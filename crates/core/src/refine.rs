//! Counterexample-guided refinement of learned grammars.
//!
//! The pipeline's simulated equivalence queries only consult the seed-derived
//! test pool, so a hypothesis can converge while still over- or
//! under-approximating the oracle language in regions the pool never probes —
//! exactly the precision gaps differential fuzzing exposed (a learned `while`
//! grammar accepting identifiers in arithmetic positions, a learned `json`
//! grammar accepting value concatenations). This module closes the loop,
//! GLADE/Arvada-style: an [`EvidenceSource`] interrogates each hypothesis with
//! whatever heavy machinery it likes (the fuzz crate plugs in a full
//! differential `FuzzCampaign` over the compiled serving artifact), the
//! resulting divergences are replayed into the learner as counterexamples, and
//! learning continues — learn → fuzz → refine — until the evidence runs dry
//! (a fixed point) or the campaign budget is exhausted.
//!
//! The loop is packaged as an [`EvidenceEquivalence`] strategy for
//! [`crate::VStar::learn_with_strategy`]: it first replays the classic pool
//! check (the cheap simulated equivalence query), and only when the pool runs
//! clean does it pay for an evidence round. [`crate::VStar::learn_refined`] is
//! the one-call entry point.

use std::collections::VecDeque;

use serde::Serialize;

use vstar_vpl::{vpa_to_vpg, Vpg};

use crate::equivalence::{EquivalenceContext, EquivalenceStrategy};
use crate::mat::Mat;
use crate::pipeline::LearnedLanguage;

/// Budget and convergence knobs of the refinement loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefineConfig {
    /// Maximum number of evidence rounds (e.g. fuzz campaigns) before the
    /// strategy gives up and lets learning end with the current hypothesis.
    pub max_campaigns: usize,
    /// Number of *consecutive* evidence rounds that must come back empty
    /// before the loop declares a fixed point. Sources are expected to vary
    /// their probing across a window of this size (see
    /// [`EvidenceSource::collect`]'s `round` argument), so a fixed point
    /// means every probe in the window ran clean against the same hypothesis.
    pub clean_passes: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { max_campaigns: 40, clean_passes: 2 }
    }
}

/// One piece of divergence evidence against a hypothesis: a raw string the
/// learned artifacts and the oracle disagree on.
#[derive(Clone, Debug, Serialize)]
pub struct Evidence {
    /// The raw witness string (over Σ, not the converted alphabet).
    pub raw: String,
    /// Verdict of the learned artifacts when the evidence was gathered.
    pub learned_accepts: bool,
    /// Verdict of the ground-truth oracle.
    pub oracle_accepts: bool,
    /// Where the evidence came from (a mutation label, corpus name, …).
    pub source: String,
}

impl Evidence {
    /// The divergence direction: `"false-positive"` when the learned side
    /// over-approximates, `"false-negative"` when it under-approximates.
    #[must_use]
    pub fn class_label(&self) -> &'static str {
        if self.learned_accepts {
            "false-positive"
        } else {
            "false-negative"
        }
    }
}

/// A generator of divergence evidence against the current hypothesis.
///
/// Implementations judge the hypothesis-as-learned-language against ground
/// truth however they can afford: the fuzz crate runs a differential campaign
/// over the compiled artifact; [`CorpusEvidence`] diffs a fixed corpus.
pub trait EvidenceSource {
    /// A short identifier recorded as [`RefineLog::evidence_source`].
    fn name(&self) -> &'static str;

    /// Collects divergence evidence against `learned` (the current
    /// hypothesis bundled with the run's tokenizer). `round` counts the
    /// collection rounds of one refinement loop; sources should vary their
    /// probing with it (different RNG seeds per round) so consecutive clean
    /// rounds genuinely mean different probes found nothing.
    fn collect(&mut self, round: usize, learned: &LearnedLanguage, mat: &Mat<'_>) -> Vec<Evidence>;
}

/// A counterexample the refinement loop replayed into the learner.
#[derive(Clone, Debug, Serialize)]
pub struct CounterexampleRecord {
    /// Evidence round (campaign number) the witness came from.
    pub campaign: usize,
    /// The raw witness string.
    pub raw: String,
    /// Divergence class at replay time ([`Evidence::class_label`]).
    pub class: String,
    /// The [`EvidenceSource`]-reported provenance.
    pub source: String,
}

/// Rule-liveness counts of one hypothesis grammar: how much of it actually
/// participates in finite derivations from the start symbol.
///
/// A rule is *live* when its left-hand side is reachable from the start
/// symbol and every nonterminal on its right-hand side is productive; only
/// live rules can appear in a derivation of a member string. Learned grammars
/// carry large dead regions (the `while` grammar shrinks from tens of
/// thousands of rules to ~a quarter under refinement), and these counts make
/// that shrinkage auditable per evidence round instead of anecdotal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct RuleLiveness {
    /// Nonterminals in the grammar.
    pub nonterminals: usize,
    /// Total rules in the grammar.
    pub rules: usize,
    /// Rules on some finite derivation from the start symbol.
    pub live_rules: usize,
}

/// Computes the [`RuleLiveness`] counts of `vpg`.
#[must_use]
pub fn rule_liveness(vpg: &Vpg) -> RuleLiveness {
    use std::collections::BTreeSet;
    use vstar_vpl::{NonterminalId, RuleRhs};

    let mut reachable = BTreeSet::new();
    let mut work = vec![vpg.start()];
    reachable.insert(vpg.start());
    while let Some(nt) = work.pop() {
        for rhs in vpg.alternatives(nt) {
            let succs: &[NonterminalId] = match *rhs {
                RuleRhs::Empty => &[],
                RuleRhs::Linear { next, .. } => &[next],
                RuleRhs::Match { inner, next, .. } => &[inner, next],
            };
            for &s in succs {
                if reachable.insert(s) {
                    work.push(s);
                }
            }
        }
    }
    let productive: Vec<bool> = vpg.min_lengths().iter().map(Option::is_some).collect();
    let mut rules = 0usize;
    let mut live = 0usize;
    for (lhs, rhs) in vpg.rules() {
        rules += 1;
        let rhs_productive = match rhs {
            RuleRhs::Empty => true,
            RuleRhs::Linear { next, .. } => productive[next.0],
            RuleRhs::Match { inner, next, .. } => productive[inner.0] && productive[next.0],
        };
        if reachable.contains(&lhs) && rhs_productive {
            live += 1;
        }
    }
    RuleLiveness { nonterminals: vpg.nonterminal_count(), rules, live_rules: live }
}

/// Query and cache economics of one evidence round, snapshotted from the
/// telemetry `query.<site>.{hit,miss}` counters — the same source of truth
/// the paper's "#Queries" metric is measured from, so the bench tallies and
/// the telemetry counters can never drift apart. The snapshot reads the
/// *innermost* query site that moved during the round's collection: the
/// shared `oracle` site when the evidence source drives a
/// `CountingOracle`-backed language (`vstar_oracles`), else the learner's
/// `mat` cache. All fields are zero when no telemetry collector is
/// installed for the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RefineRoundSnapshot {
    /// The evidence round (0-based campaign number).
    pub round: usize,
    /// Divergence evidence items the round produced.
    pub evidence: usize,
    /// Unique membership queries (cache misses) spent collecting the round's
    /// evidence.
    pub unique_queries: usize,
    /// Total membership calls (hits included) during the round's collection.
    pub total_queries: usize,
    /// Cache hits during the round's collection.
    pub cache_hits: usize,
    /// `cache_hits / total_queries` for this round (0 when no calls).
    pub cache_hit_rate: f64,
}

/// What a refinement loop did: every counterexample replayed, plus how the
/// loop ended. Serialisable so bench reports can track refinement across
/// commits (deliberately no wall-clock fields).
#[derive(Clone, Debug, Default, Serialize)]
pub struct RefineLog {
    /// The [`EvidenceSource::name`] of the source that drove the loop.
    pub evidence_source: String,
    /// Evidence rounds (campaigns) executed.
    pub campaigns_run: usize,
    /// Counterexamples replayed into the learner, in replay order.
    pub counterexamples: Vec<CounterexampleRecord>,
    /// Evidence items that no longer diverged when checked against the
    /// then-current hypothesis (an earlier counterexample already fixed them).
    pub stale_evidence: usize,
    /// Members of the oracle language whose conversion is not well matched
    /// under the inferred structure; they cannot be replayed as
    /// counterexamples and are skipped (a structure-inference gap, not a
    /// learner gap).
    pub skipped_ill_matched: usize,
    /// `true` when [`RefineConfig::clean_passes`] consecutive evidence rounds
    /// came back empty: the evidence ran dry.
    pub fixed_point: bool,
    /// `true` when [`RefineConfig::max_campaigns`] rounds were spent without
    /// reaching a fixed point.
    pub budget_exhausted: bool,
    /// Rule liveness of the hypothesis at the *first* evidence round — the
    /// grammar refinement started from. `None` when no evidence round ran.
    pub pre_liveness: Option<RuleLiveness>,
    /// Rule liveness of the hypothesis at the *latest* evidence round. `None`
    /// when no evidence round ran.
    pub post_liveness: Option<RuleLiveness>,
    /// Per-evidence-round query/cache snapshot (the embedded telemetry view):
    /// one entry per campaign, in round order.
    pub rounds: Vec<RefineRoundSnapshot>,
}

impl RefineLog {
    /// Number of counterexamples replayed into the learner.
    #[must_use]
    pub fn counterexamples_replayed(&self) -> usize {
        self.counterexamples.len()
    }

    /// Unique membership queries spent across all evidence rounds.
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.rounds.iter().map(|r| r.unique_queries).sum()
    }

    /// Cache hit rate across all evidence rounds (0 when no calls were made).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: usize = self.rounds.iter().map(|r| r.cache_hits).sum();
        let total: usize = self.rounds.iter().map(|r| r.total_queries).sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Rebuilds the learned-language view of the current hypothesis: the VPG is
/// re-extracted from the hypothesis VPA (so evidence sources always fuzz the
/// grammar the final pipeline would ship for *this* hypothesis), bundled with
/// the run's tokenizer and mode.
#[must_use]
pub fn hypothesis_language(cx: &EquivalenceContext<'_>) -> LearnedLanguage {
    let vpg = vpa_to_vpg(&cx.hypothesis.vpa);
    LearnedLanguage::new(cx.hypothesis.vpa.clone(), vpg, cx.tokenizer.clone(), cx.mode)
}

/// The evidence-driven equivalence strategy: the classic pool check, wrapped
/// so that a pool-clean hypothesis is interrogated by an [`EvidenceSource`]
/// before being declared equivalent.
///
/// Divergence evidence is queued and replayed one counterexample per
/// equivalence round (the learner refines between rounds); evidence that no
/// longer diverges against the refined hypothesis is dropped as stale rather
/// than replayed, so one underlying defect fixed by an earlier counterexample
/// does not get "fixed" twice.
pub struct EvidenceEquivalence<'s> {
    source: &'s mut dyn EvidenceSource,
    config: RefineConfig,
    pending: VecDeque<Evidence>,
    clean_streak: usize,
    log: RefineLog,
}

enum Confirmation {
    /// Still a disagreement; replay this converted word.
    Confirmed(String),
    /// No longer (or never was) a hypothesis/oracle disagreement.
    Stale,
    /// A member whose conversion the inferred structure cannot represent.
    IllMatched,
}

impl<'s> EvidenceEquivalence<'s> {
    /// Wraps an evidence source as an equivalence strategy.
    pub fn new(source: &'s mut dyn EvidenceSource, config: RefineConfig) -> Self {
        let log = RefineLog { evidence_source: source.name().to_string(), ..RefineLog::default() };
        EvidenceEquivalence { source, config, pending: VecDeque::new(), clean_streak: 0, log }
    }

    /// The refinement log accumulated so far.
    #[must_use]
    pub fn log(&self) -> &RefineLog {
        &self.log
    }

    /// Consumes the strategy, returning the refinement log.
    #[must_use]
    pub fn into_log(self) -> RefineLog {
        self.log
    }

    /// Re-checks one piece of evidence against the *current* hypothesis.
    fn confirm(cx: &EquivalenceContext<'_>, evidence: &Evidence) -> Confirmation {
        let conv = cx.convert(&evidence.raw);
        let oracle_says = cx.mat.member(&evidence.raw);
        if cx.hypothesis.vpa.accepts(&conv) == oracle_says {
            return Confirmation::Stale;
        }
        if oracle_says && !cx.hypothesis.vpa.tagging().is_well_matched(&conv) {
            // A member whose conversion is not pair-matched cannot be
            // replayed: the inferred structure cannot represent it, and the
            // learner would reject it as incompatible. (The converse — a
            // *non*-member the hypothesis accepts through cross-pair return
            // transitions — is a legitimate counterexample and falls
            // through.)
            return Confirmation::IllMatched;
        }
        Confirmation::Confirmed(conv)
    }
}

impl EquivalenceStrategy for EvidenceEquivalence<'_> {
    fn find_counterexample(&mut self, cx: &EquivalenceContext<'_>) -> Option<String> {
        // The cheap simulated equivalence query first: the pool must run
        // clean before an evidence round is worth paying for.
        let pool_ce = {
            let _pool_check = vstar_telemetry::span("pool-check");
            cx.pool.find_counterexample(cx.mat, cx.hypothesis)
        };
        if let Some(ce) = pool_ce {
            self.clean_streak = 0;
            return Some(ce);
        }
        loop {
            // Replay queued evidence one counterexample per equivalence
            // round, dropping items an earlier refinement already fixed.
            while let Some(evidence) = self.pending.pop_front() {
                let confirmation = {
                    let _replay = vstar_telemetry::span("evidence-replay");
                    Self::confirm(cx, &evidence)
                };
                match confirmation {
                    Confirmation::Confirmed(conv) => {
                        self.clean_streak = 0;
                        vstar_telemetry::counter("refine.counterexamples_replayed", 1);
                        self.log.counterexamples.push(CounterexampleRecord {
                            campaign: self.log.campaigns_run,
                            raw: evidence.raw.clone(),
                            class: evidence.class_label().to_string(),
                            source: evidence.source.clone(),
                        });
                        return Some(conv);
                    }
                    Confirmation::Stale => {
                        vstar_telemetry::counter("refine.stale_evidence", 1);
                        self.log.stale_evidence += 1;
                    }
                    Confirmation::IllMatched => {
                        vstar_telemetry::counter("refine.skipped_ill_matched", 1);
                        self.log.skipped_ill_matched += 1;
                    }
                }
            }
            if self.log.campaigns_run >= self.config.max_campaigns {
                self.log.budget_exhausted = true;
                return None;
            }
            let round = self.log.campaigns_run;
            self.log.campaigns_run += 1;
            vstar_telemetry::counter("refine.campaigns", 1);
            let learned = hypothesis_language(cx);
            let liveness = rule_liveness(learned.vpg());
            self.log.pre_liveness.get_or_insert(liveness);
            self.log.post_liveness = Some(liveness);
            // Snapshot the telemetry query counters around the collection so
            // the round's query budget and cache economics land in the log.
            // The `oracle` site is the innermost cache when the evidence
            // source drives a CountingOracle-backed language; sources that
            // only query through the learner's Mat move the `mat` site
            // instead, so prefer whichever innermost site actually moved.
            let oracle_miss_before = vstar_telemetry::counter_total("query.oracle.miss");
            let oracle_hit_before = vstar_telemetry::counter_total("query.oracle.hit");
            let mat_miss_before = vstar_telemetry::counter_total("query.mat.miss");
            let mat_hit_before = vstar_telemetry::counter_total("query.mat.hit");
            let evidence = {
                let _campaign = vstar_telemetry::span("evidence-campaign");
                self.source.collect(round, &learned, cx.mat)
            };
            let oracle_miss =
                (vstar_telemetry::counter_total("query.oracle.miss") - oracle_miss_before) as usize;
            let oracle_hit =
                (vstar_telemetry::counter_total("query.oracle.hit") - oracle_hit_before) as usize;
            let mat_miss =
                (vstar_telemetry::counter_total("query.mat.miss") - mat_miss_before) as usize;
            let mat_hit =
                (vstar_telemetry::counter_total("query.mat.hit") - mat_hit_before) as usize;
            let (unique_queries, cache_hits) = if oracle_miss + oracle_hit > 0 {
                (oracle_miss, oracle_hit)
            } else {
                (mat_miss, mat_hit)
            };
            let total_queries = unique_queries + cache_hits;
            self.log.rounds.push(RefineRoundSnapshot {
                round,
                evidence: evidence.len(),
                unique_queries,
                total_queries,
                cache_hits,
                cache_hit_rate: if total_queries == 0 {
                    0.0
                } else {
                    cache_hits as f64 / total_queries as f64
                },
            });
            vstar_telemetry::counter("refine.evidence_collected", evidence.len() as u64);
            vstar_telemetry::event(
                "refine.round",
                &[
                    ("round", round as u64),
                    ("evidence", evidence.len() as u64),
                    ("unique_queries", unique_queries as u64),
                    ("total_queries", total_queries as u64),
                ],
            );
            if evidence.is_empty() {
                self.clean_streak += 1;
                if self.clean_streak >= self.config.clean_passes {
                    self.log.fixed_point = true;
                    return None;
                }
            } else {
                self.clean_streak = 0;
                self.pending.extend(evidence);
            }
        }
    }
}

/// The simplest evidence source: diff the hypothesis against a fixed corpus
/// of raw strings. Deterministic and oracle-cheap — the unit-test and
/// held-out-corpus counterpart of the fuzz crate's campaign-backed source.
#[derive(Clone, Debug)]
pub struct CorpusEvidence {
    words: Vec<String>,
}

impl CorpusEvidence {
    /// Builds a source from raw strings (members and non-members both work;
    /// each round reports those the hypothesis misjudges).
    #[must_use]
    pub fn new(words: Vec<String>) -> Self {
        CorpusEvidence { words }
    }

    /// The corpus being diffed.
    #[must_use]
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

impl EvidenceSource for CorpusEvidence {
    fn name(&self) -> &'static str {
        "corpus"
    }

    fn collect(
        &mut self,
        _round: usize,
        learned: &LearnedLanguage,
        mat: &Mat<'_>,
    ) -> Vec<Evidence> {
        self.words
            .iter()
            .filter_map(|w| {
                let learned_says = learned.accepts(mat, w);
                let oracle_says = mat.member(w);
                (learned_says != oracle_says).then(|| Evidence {
                    raw: w.clone(),
                    learned_accepts: learned_says,
                    oracle_accepts: oracle_says,
                    source: "corpus".to_string(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TokenDiscovery, VStar, VStarConfig};

    fn dyck(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    /// A deliberately weak pool (no combinations beyond the seeds) so that
    /// base learning over-generalizes and the evidence loop has work to do.
    fn weak_pool_config() -> crate::equivalence::TestPoolConfig {
        crate::equivalence::TestPoolConfig { max_test_strings: 1, max_length: Some(2), rng_seed: 1 }
    }

    /// Dyck with parity: only even numbers of 'x' at the top level. The weak
    /// pool cannot distinguish the parity states, so the evidence corpus must.
    fn dyck_even(s: &str) -> bool {
        dyck(s) && s.chars().filter(|&c| c == 'x').count() % 2 == 0
    }

    #[test]
    fn corpus_evidence_repairs_a_weakly_learned_language() {
        let oracle = dyck_even;
        let mat = Mat::new(&oracle);
        let config = VStarConfig { test_pool: weak_pool_config(), ..VStarConfig::default() };
        let vstar = VStar::new(config);
        let seeds = vec!["(xx)".to_string(), "()".to_string()];

        // Base learning with the crippled pool misjudges some short strings.
        let base = vstar.learn(&mat, &['(', ')', 'x'], &seeds).expect("base learning succeeds");
        let probe: Vec<String> = vstar_vpl::words::all_strings(&['(', ')', 'x'], 5);
        let base_wrong = probe.iter().filter(|w| base.accepts(&mat, w) != dyck_even(w)).count();
        assert!(base_wrong > 0, "weak pool was expected to leave divergences");

        // Refined learning with the probe corpus as held-out evidence.
        let mut source = CorpusEvidence::new(probe.clone());
        let (refined, log) = vstar
            .learn_refined(&mat, &['(', ')', 'x'], &seeds, &mut source, RefineConfig::default())
            .expect("refined learning succeeds");
        assert!(log.fixed_point, "evidence should run dry: {log:?}");
        assert!(!log.budget_exhausted);
        assert!(log.counterexamples_replayed() > 0, "refinement should replay evidence");
        // Every evidence round snapshots hypothesis rule liveness, making the
        // refinement's grammar-size trajectory auditable.
        let pre = log.pre_liveness.expect("evidence rounds ran");
        let post = log.post_liveness.expect("evidence rounds ran");
        assert!(pre.live_rules <= pre.rules);
        assert!(post.live_rules <= post.rules);
        assert!(post.rules > 0 && post.live_rules > 0);
        for w in &probe {
            assert_eq!(refined.accepts(&mat, w), dyck_even(w), "refined misjudges {w:?}");
        }
        // Refinement never decreases recall on the evidence corpus.
        let base_recall = probe.iter().filter(|w| dyck_even(w) && base.accepts(&mat, w)).count();
        let refined_recall =
            probe.iter().filter(|w| dyck_even(w) && refined.accepts(&mat, w)).count();
        assert!(refined_recall >= base_recall);
    }

    #[test]
    fn clean_corpus_reaches_fixed_point_without_counterexamples() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        let seeds = vec!["(x(x))x".to_string(), "()".to_string()];
        let corpus = vstar_vpl::words::all_strings(&['(', ')', 'x'], 5);
        let mut source = CorpusEvidence::new(corpus);
        let (result, log) = vstar
            .learn_refined(&mat, &['(', ')', 'x'], &seeds, &mut source, RefineConfig::default())
            .expect("learning succeeds");
        // Dyck learns exactly from the default pool; the corpus adds nothing.
        assert!(log.fixed_point);
        assert_eq!(log.counterexamples_replayed(), 0);
        assert_eq!(log.campaigns_run, RefineConfig::default().clean_passes);
        assert_eq!(result.mode, TokenDiscovery::Tokens);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // An evidence source that always reports an unusable (ill-matched
        // member) witness: the loop must burn its budget, not spin forever.
        struct Unfixable;
        impl EvidenceSource for Unfixable {
            fn name(&self) -> &'static str {
                "unfixable"
            }
            fn collect(
                &mut self,
                _round: usize,
                _learned: &LearnedLanguage,
                _mat: &Mat<'_>,
            ) -> Vec<Evidence> {
                vec![Evidence {
                    raw: ")(".to_string(),
                    learned_accepts: false,
                    oracle_accepts: true,
                    source: "unfixable".to_string(),
                }]
            }
        }
        // Oracle accepts ")(", which is never well matched under {(,)}.
        let oracle = |s: &str| s == ")(" || dyck(s);
        let mat = Mat::new(&oracle);
        let vstar = VStar::new(VStarConfig::default());
        let seeds = vec!["(x)".to_string()];
        let config = RefineConfig { max_campaigns: 3, clean_passes: 2 };
        let (_result, log) = vstar
            .learn_refined(&mat, &['(', ')', 'x'], &seeds, &mut Unfixable, config)
            .expect("learning still converges on the representable part");
        assert!(log.budget_exhausted, "{log:?}");
        assert!(!log.fixed_point);
        assert_eq!(log.campaigns_run, 3);
        assert_eq!(log.skipped_ill_matched, 3);
        assert_eq!(log.counterexamples_replayed(), 0);
    }

    #[test]
    fn rule_liveness_counts_only_derivable_rules() {
        use vstar_vpl::{Tagging, VpgBuilder};
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let orphan = b.nonterminal("Orphan");
        let stuck = b.nonterminal("Stuck");
        b.empty_rule(s); // live
        b.match_rule(s, '(', s, ')', s); // live
        b.linear_rule(s, 'x', stuck); // dead: Stuck is unproductive
        b.empty_rule(orphan); // dead: Orphan is unreachable
        b.linear_rule(stuck, 'x', stuck); // dead on both counts
        let vpg = b.build(s).unwrap();
        let live = rule_liveness(&vpg);
        assert_eq!(live, RuleLiveness { nonterminals: 3, rules: 5, live_rules: 2 }, "{live:?}");
    }

    #[test]
    fn evidence_class_labels() {
        let fp = Evidence {
            raw: "x".into(),
            learned_accepts: true,
            oracle_accepts: false,
            source: "t".into(),
        };
        let fn_ = Evidence {
            raw: "y".into(),
            learned_accepts: false,
            oracle_accepts: true,
            source: "t".into(),
        };
        assert_eq!(fp.class_label(), "false-positive");
        assert_eq!(fn_.class_label(), "false-negative");
        assert_eq!(CorpusEvidence::new(vec!["x".into()]).words().len(), 1);
    }
}
