//! Error type for the V-Star learner.

use std::fmt;

/// Errors produced by the V-Star pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VStarError {
    /// No seed strings were provided.
    NoSeeds,
    /// A seed string was rejected by the membership oracle; seeds must be valid
    /// program inputs.
    InvalidSeed {
        /// The offending seed.
        seed: String,
    },
    /// No compatible tagging / tokenizer could be found within the configured
    /// bound on the nesting-pattern parameter `K`.
    NoCompatibleTagging {
        /// The largest `K` that was tried.
        max_k: usize,
    },
    /// The VPA learner exceeded its iteration budget without converging.
    LearnerDidNotConverge {
        /// Number of counterexample rounds performed.
        rounds: usize,
    },
    /// A counterexample accepted by the oracle is not well matched under the
    /// inferred tagging, so it cannot be processed (the tagging is incompatible
    /// with the full oracle language).
    IncompatibleCounterexample {
        /// The offending counterexample.
        counterexample: String,
    },
}

impl fmt::Display for VStarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VStarError::NoSeeds => write!(f, "no seed strings were provided"),
            VStarError::InvalidSeed { seed } => {
                write!(f, "seed string {seed:?} is rejected by the membership oracle")
            }
            VStarError::NoCompatibleTagging { max_k } => {
                write!(f, "no compatible tagging/tokenizer found with K up to {max_k}")
            }
            VStarError::LearnerDidNotConverge { rounds } => {
                write!(f, "VPA learner did not converge after {rounds} counterexample rounds")
            }
            VStarError::IncompatibleCounterexample { counterexample } => {
                write!(
                    f,
                    "counterexample {counterexample:?} is not well matched under the inferred tagging"
                )
            }
        }
    }
}

impl std::error::Error for VStarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(VStarError, &str)> = vec![
            (VStarError::NoSeeds, "no seed"),
            (VStarError::InvalidSeed { seed: "x".into() }, "rejected"),
            (VStarError::NoCompatibleTagging { max_k: 4 }, "K up to 4"),
            (VStarError::LearnerDidNotConverge { rounds: 9 }, "9 counterexample"),
            (
                VStarError::IncompatibleCounterexample { counterexample: "ab".into() },
                "not well matched",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn boxes_as_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(VStarError::NoSeeds);
        assert!(!e.to_string().is_empty());
    }
}
