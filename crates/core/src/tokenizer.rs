//! Partial tokenizers and the `conv_τ` conversion (paper §5.1–§5.2, Algorithm 5).
//!
//! A *partial tokenizer* recognises only the call and return tokens of the oracle
//! language; everything between them is implicitly treated as plain text (the plain
//! tokens are learned later, during VPA learning). Tokenizing a string must respect
//! the *k-Repetition* property: an occurrence of a call/return token string that is
//! `k`-repeatable in context (e.g. a `{` inside a JSON string literal) is *not* a
//! real token occurrence and is skipped (Algorithm 5).
//!
//! `conv_τ` (here [`PartialTokenizer::convert`]) inserts an artificial call marker
//! `⊳ᵢ` before each call-token match and an artificial return marker `⊲ᵢ` after each
//! return-token match, turning the token-based VPL into a character-based VPL that
//! Algorithm 1 can learn.

use std::fmt;

use vstar_automata::Dfa;
use vstar_vpl::Tagging;

use crate::mat::Mat;

/// First code point of the artificial call markers `⊳₀, ⊳₁, …` (Unicode private use
/// area, so they can never collide with oracle alphabets).
const CALL_MARKER_BASE: u32 = 0xE000;
/// First code point of the artificial return markers `⊲₀, ⊲₁, …`.
const RETURN_MARKER_BASE: u32 = 0xE800;

/// The artificial call marker `⊳ᵢ` for pair index `i`.
#[must_use]
pub fn call_marker(pair_index: usize) -> char {
    char::from_u32(CALL_MARKER_BASE + u32::try_from(pair_index).expect("small index"))
        .expect("private use area code point")
}

/// The artificial return marker `⊲ᵢ` for pair index `i`.
#[must_use]
pub fn return_marker(pair_index: usize) -> char {
    char::from_u32(RETURN_MARKER_BASE + u32::try_from(pair_index).expect("small index"))
        .expect("private use area code point")
}

/// Returns `true` if `c` is one of the artificial markers inserted by `conv_τ`.
#[must_use]
pub fn is_marker(c: char) -> bool {
    let v = c as u32;
    (CALL_MARKER_BASE..CALL_MARKER_BASE + 0x400).contains(&v)
        || (RETURN_MARKER_BASE..RETURN_MARKER_BASE + 0x400).contains(&v)
}

/// Removes all artificial markers from a string over the extended alphabet Σ̃,
/// recovering the raw string over Σ (the inverse direction of `conv_τ` used to
/// answer membership queries on learner-composed strings).
#[must_use]
pub fn strip_markers(s: &str) -> String {
    s.chars().filter(|&c| !is_marker(c)).collect()
}

/// Whether a token is a call or a return token.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A call token (paired with pushes).
    Call,
    /// A return token (paired with pops).
    Return,
}

/// A matcher for the strings of one token: either a literal string or a learned
/// regular language (a DFA produced by L\*).
#[derive(Clone, Debug)]
pub enum TokenMatcher {
    /// The token has exactly one string.
    Literal(String),
    /// The token's lexical rule is a regular language.
    Dfa(Dfa),
}

impl TokenMatcher {
    /// Lengths (in characters, ascending) of the non-empty prefixes of `input`
    /// matched by this token.
    #[must_use]
    pub fn prefix_match_lengths(&self, input: &str) -> Vec<usize> {
        match self {
            TokenMatcher::Literal(lit) => {
                if !lit.is_empty() && input.starts_with(lit.as_str()) {
                    vec![lit.chars().count()]
                } else {
                    Vec::new()
                }
            }
            TokenMatcher::Dfa(dfa) => {
                dfa.matching_prefix_lengths(input).into_iter().filter(|&l| l > 0).collect()
            }
        }
    }

    /// Returns `true` if the whole string is a string of this token.
    #[must_use]
    pub fn matches(&self, input: &str) -> bool {
        match self {
            TokenMatcher::Literal(lit) => lit == input,
            TokenMatcher::Dfa(dfa) => dfa.accepts(input),
        }
    }

    /// A human-readable description of the token's lexical rule.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenMatcher::Literal(lit) => format!("{lit:?}"),
            TokenMatcher::Dfa(dfa) => dfa.to_regex(),
        }
    }
}

/// A paired call/return token.
#[derive(Clone, Debug)]
pub struct TokenPair {
    /// Matcher for the call token.
    pub call: TokenMatcher,
    /// Matcher for the return token.
    pub ret: TokenMatcher,
}

/// One token occurrence found by [`PartialTokenizer::tokenize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenMatch {
    /// Index of the token pair in the tokenizer.
    pub pair: usize,
    /// Call or return.
    pub kind: TokenKind,
    /// Character range `[start, end)` of the occurrence in the input.
    pub start: usize,
    /// Exclusive end of the occurrence.
    pub end: usize,
}

/// A partial tokenizer `D = {(r₁, r₁′), …}` recognising call/return token pairs.
#[derive(Clone, Debug, Default)]
pub struct PartialTokenizer {
    pairs: Vec<TokenPair>,
    /// The `k` of the k-Repetition check (the paper sets `k = 2`).
    k_repetition: usize,
}

impl PartialTokenizer {
    /// An empty tokenizer with the paper's default repetition bound (`k = 2`).
    #[must_use]
    pub fn new() -> Self {
        PartialTokenizer { pairs: Vec::new(), k_repetition: 2 }
    }

    /// Sets the `k` used by the k-Repetition check.
    #[must_use]
    pub fn with_k_repetition(mut self, k: usize) -> Self {
        self.k_repetition = k.max(2);
        self
    }

    /// Builds a tokenizer whose tokens are single characters, from a character-level
    /// tagging (the character-based setting of paper §4 embeds into the token-based
    /// one by taking literal one-character tokens).
    #[must_use]
    pub fn from_tagging(tagging: &Tagging) -> Self {
        let mut t = PartialTokenizer::new();
        for &(call, ret) in tagging.pairs() {
            t.push_pair(TokenPair {
                call: TokenMatcher::Literal(call.to_string()),
                ret: TokenMatcher::Literal(ret.to_string()),
            });
        }
        t
    }

    /// Adds a call/return token pair and returns its index.
    pub fn push_pair(&mut self, pair: TokenPair) -> usize {
        self.pairs.push(pair);
        self.pairs.len() - 1
    }

    /// The token pairs.
    #[must_use]
    pub fn pairs(&self) -> &[TokenPair] {
        &self.pairs
    }

    /// The `k` used by the k-Repetition check.
    #[must_use]
    pub fn k_repetition(&self) -> usize {
        self.k_repetition
    }

    /// Number of call/return token pairs.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if the tokenizer has no token pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The tagging over the extended alphabet Σ̃: pair `i` maps to the artificial
    /// markers `(⊳ᵢ, ⊲ᵢ)`; all raw characters are plain.
    ///
    /// # Panics
    ///
    /// Never panics for realistic pair counts (the private-use area is large).
    #[must_use]
    pub fn marker_tagging(&self) -> Tagging {
        Tagging::from_pairs((0..self.pairs.len()).map(|i| (call_marker(i), return_marker(i))))
            .expect("marker characters are distinct by construction")
    }

    /// Tokenizes `s` with the k-Repetition filter (paper Algorithm 5).
    ///
    /// Scans left to right; at each position the first (shortest) match of any
    /// call/return token is considered. If the matched substring is `k`-repeatable
    /// in `s` — repeating it `k` times in place keeps the string valid — it is *not*
    /// a real token occurrence (e.g. a `{` inside a JSON string) and the scan moves
    /// on by one character; otherwise the match is recorded and the scan jumps past
    /// it.
    #[must_use]
    pub fn tokenize(&self, mat: &Mat<'_>, s: &str) -> Vec<TokenMatch> {
        let chars: Vec<char> = s.chars().collect();
        let mut matches = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let rest: String = chars[i..].iter().collect();
            match self.first_match_at(&rest) {
                Some((pair, kind, len)) => {
                    let occurrence: String = chars[i..i + len].iter().collect();
                    if self.is_k_repeatable(mat, &chars, i, i + len, &occurrence) {
                        i += 1;
                    } else {
                        matches.push(TokenMatch { pair, kind, start: i, end: i + len });
                        i += len;
                    }
                }
                None => i += 1,
            }
        }
        matches
    }

    fn first_match_at(&self, rest: &str) -> Option<(usize, TokenKind, usize)> {
        let mut best: Option<(usize, TokenKind, usize)> = None;
        for (idx, pair) in self.pairs.iter().enumerate() {
            for (kind, matcher) in [(TokenKind::Call, &pair.call), (TokenKind::Return, &pair.ret)] {
                if let Some(&len) = matcher.prefix_match_lengths(rest).first() {
                    if best.is_none_or(|(_, _, blen)| len < blen) {
                        best = Some((idx, kind, len));
                    }
                }
            }
        }
        best
    }

    fn is_k_repeatable(
        &self,
        mat: &Mat<'_>,
        chars: &[char],
        start: usize,
        end: usize,
        occurrence: &str,
    ) -> bool {
        let prefix: String = chars[..start].iter().collect();
        let suffix: String = chars[end..].iter().collect();
        let repeated = occurrence.repeat(self.k_repetition);
        mat.member(&format!("{prefix}{repeated}{suffix}"))
    }

    /// `conv_τ(s)`: inserts artificial markers around every tokenized call/return
    /// occurrence (paper §5.1). Membership queries issued by the k-Repetition check
    /// go through `mat`.
    #[must_use]
    pub fn convert(&self, mat: &Mat<'_>, s: &str) -> String {
        self.convert_with_positions(mat, s).into_iter().map(|(c, _)| c).collect()
    }

    /// Like [`PartialTokenizer::convert`], but each output character carries the
    /// index of the input character it belongs to (markers carry the index of the
    /// first/last character of their token occurrence). Used by the compatibility
    /// check of Definition 5.1, which needs to know which markers fall inside the
    /// `x`/`y` parts of a nesting pattern.
    #[must_use]
    pub fn convert_with_positions(&self, mat: &Mat<'_>, s: &str) -> Vec<(char, usize)> {
        let chars: Vec<char> = s.chars().collect();
        let matches = self.tokenize(mat, s);
        let mut out: Vec<(char, usize)> = Vec::with_capacity(chars.len() + 2 * matches.len());
        let mut match_iter = matches.iter().peekable();
        let mut pending_return_at: Vec<(usize, char)> = Vec::new();
        for (i, &c) in chars.iter().enumerate() {
            if let Some(m) = match_iter.peek() {
                if m.start == i && m.kind == TokenKind::Call {
                    out.push((call_marker(m.pair), i));
                    match_iter.next();
                } else if m.start == i && m.kind == TokenKind::Return {
                    pending_return_at.push((m.end, return_marker(m.pair)));
                    match_iter.next();
                }
            }
            out.push((c, i));
            // Emit any return marker whose occurrence just ended.
            while let Some(&(end, marker)) = pending_return_at.first() {
                if end == i + 1 {
                    out.push((marker, i));
                    pending_return_at.remove(0);
                } else {
                    break;
                }
            }
        }
        out
    }

    /// Returns `true` if `conv_τ(s)` is well matched under the marker tagging.
    #[must_use]
    pub fn converts_to_well_matched(&self, mat: &Mat<'_>, s: &str) -> bool {
        self.marker_tagging().is_well_matched(&self.convert(mat, s))
    }
}

impl fmt::Display for PartialTokenizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "partial tokenizer with {} pair(s):", self.pairs.len())?;
        for (i, pair) in self.pairs.iter().enumerate() {
            writeln!(
                f,
                "  #{i}: call = {}, return = {}",
                pair.call.describe(),
                pair.ret.describe()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_like(s: &str) -> bool {
        // Minimal JSON-ish oracle: {"<letters or {>":true} objects, nested objects,
        // enough to exercise the k-repetition example from the paper.
        fn value(s: &[u8], pos: usize) -> Option<usize> {
            match s.get(pos) {
                Some(b'{') => {
                    if s.get(pos + 1) == Some(&b'}') {
                        return Some(pos + 2);
                    }
                    let mut p = pos + 1;
                    loop {
                        p = string(s, p)?;
                        if s.get(p) != Some(&b':') {
                            return None;
                        }
                        p = value(s, p + 1)?;
                        match s.get(p) {
                            Some(b'}') => return Some(p + 1),
                            Some(b',') => p += 1,
                            _ => return None,
                        }
                    }
                }
                Some(b't') => s[pos..].starts_with(b"true").then_some(pos + 4),
                _ => string(s, pos),
            }
        }
        fn string(s: &[u8], pos: usize) -> Option<usize> {
            if s.get(pos) != Some(&b'"') {
                return None;
            }
            let mut p = pos + 1;
            while let Some(&c) = s.get(p) {
                if c == b'"' {
                    return Some(p + 1);
                }
                if c.is_ascii_lowercase() || c == b'{' {
                    p += 1;
                } else {
                    return None;
                }
            }
            None
        }
        value(s.as_bytes(), 0) == Some(s.len())
    }

    fn brace_tokenizer() -> PartialTokenizer {
        let mut t = PartialTokenizer::new();
        t.push_pair(TokenPair {
            call: TokenMatcher::Literal("{".to_string()),
            ret: TokenMatcher::Literal("}".to_string()),
        });
        t
    }

    #[test]
    fn markers_are_distinct_and_strippable() {
        assert_ne!(call_marker(0), return_marker(0));
        assert_ne!(call_marker(0), call_marker(1));
        assert!(is_marker(call_marker(3)));
        assert!(is_marker(return_marker(7)));
        assert!(!is_marker('{'));
        let s = format!("{}abc{}", call_marker(0), return_marker(0));
        assert_eq!(strip_markers(&s), "abc");
    }

    #[test]
    fn literal_matcher() {
        let m = TokenMatcher::Literal("<p>".to_string());
        assert_eq!(m.prefix_match_lengths("<p>x"), vec![3]);
        assert_eq!(m.prefix_match_lengths("x<p>"), Vec::<usize>::new());
        assert!(m.matches("<p>"));
        assert!(!m.matches("<p>x"));
        assert_eq!(m.describe(), "\"<p>\"");
    }

    #[test]
    fn paper_k_repetition_example() {
        // The paper's §5.2 walkthrough: for D = {({, })} and s = {"{"  :true}
        // (compacted to our dialect), Algorithm 5 returns the outer braces only.
        let oracle = json_like;
        let mat = Mat::new(&oracle);
        let t = brace_tokenizer();
        let s = "{\"{\":true}";
        assert!(json_like(s));
        let matches = t.tokenize(&mat, s);
        assert_eq!(matches.len(), 2, "{matches:?}");
        assert_eq!(matches[0].kind, TokenKind::Call);
        assert_eq!(matches[0].start, 0);
        assert_eq!(matches[1].kind, TokenKind::Return);
        assert_eq!(matches[1].start, s.chars().count() - 1);
    }

    #[test]
    fn conversion_is_well_matched_and_strips_back() {
        let oracle = json_like;
        let mat = Mat::new(&oracle);
        let t = brace_tokenizer();
        for s in ["{}", "{\"a\":true}", "{\"a\":{\"b\":true}}", "{\"{\":true}"] {
            let converted = t.convert(&mat, s);
            assert_eq!(strip_markers(&converted), s);
            assert!(t.converts_to_well_matched(&mat, s), "{s}");
        }
        // An ill-matched raw string converts to an ill-matched marked string.
        assert!(!t.converts_to_well_matched(&mat, "{\"a\":true"));
    }

    #[test]
    fn conversion_positions_cover_regions() {
        let oracle = json_like;
        let mat = Mat::new(&oracle);
        let t = brace_tokenizer();
        let s = "{\"a\":true}";
        let with_pos = t.convert_with_positions(&mat, s);
        // First output char is the call marker attached to position 0.
        assert!(is_marker(with_pos[0].0));
        assert_eq!(with_pos[0].1, 0);
        // Last output char is the return marker attached to the last position.
        let last = *with_pos.last().unwrap();
        assert!(is_marker(last.0));
        assert_eq!(last.1, s.chars().count() - 1);
    }

    #[test]
    fn from_tagging_builds_single_char_tokens() {
        let tagging = vstar_vpl::Tagging::from_pairs([('(', ')')]).unwrap();
        let t = PartialTokenizer::from_tagging(&tagging);
        assert_eq!(t.pair_count(), 1);
        let oracle = |s: &str| {
            let mut d = 0i64;
            for c in s.chars() {
                match c {
                    '(' => d += 1,
                    ')' => {
                        d -= 1;
                        if d < 0 {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
            d == 0
        };
        let mat = Mat::new(&oracle);
        let matches = t.tokenize(&mat, "(x)");
        assert_eq!(matches.len(), 2);
        assert!(t.converts_to_well_matched(&mat, "(x)"));
    }

    #[test]
    fn multi_character_token_matching() {
        // Toy XML with literal <p> / </p> tokens.
        let oracle = |s: &str| {
            fn parse(s: &[u8], pos: usize) -> Option<usize> {
                if s[pos..].starts_with(b"<p>") {
                    let inner = parse(s, pos + 3)?;
                    s[inner..].starts_with(b"</p>").then_some(inner + 4)
                } else {
                    let mut i = pos;
                    while i < s.len() && s[i].is_ascii_lowercase() {
                        i += 1;
                    }
                    (i > pos).then_some(i)
                }
            }
            parse(s.as_bytes(), 0) == Some(s.len())
        };
        let mat = Mat::new(&oracle);
        let mut t = PartialTokenizer::new();
        t.push_pair(TokenPair {
            call: TokenMatcher::Literal("<p>".to_string()),
            ret: TokenMatcher::Literal("</p>".to_string()),
        });
        let s = "<p><p>p</p></p>";
        let matches = t.tokenize(&mat, s);
        assert_eq!(matches.len(), 4);
        assert_eq!(matches[0].kind, TokenKind::Call);
        assert_eq!(matches[2].kind, TokenKind::Return);
        let converted = t.convert(&mat, s);
        assert!(t.marker_tagging().is_well_matched(&converted));
        // The converted string mirrors the paper's ⊳<p>⊳<p>p</p>⊲</p>⊲ shape.
        assert_eq!(converted.chars().filter(|&c| is_marker(c)).count(), 4);
        assert!(converted.starts_with(call_marker(0)));
        assert!(converted.ends_with(return_marker(0)));
    }

    #[test]
    fn display_lists_pairs() {
        let t = brace_tokenizer();
        let text = t.to_string();
        assert!(text.contains("1 pair"));
        assert!(text.contains("call"));
    }
}
