//! Token-level call/return inference (paper §5.2, Algorithm 4).
//!
//! For languages whose call/return structure lives in multi-character *tokens*
//! (`<p>` / `</p>` in XML) — or in characters that sometimes occur as plain text
//! (`{` inside a JSON string) — V-Star infers a [`PartialTokenizer`]: a set of
//! call/return token pairs, each given by a lexical rule. The procedure mirrors
//! Algorithm 3 but, instead of single characters, it enumerates candidate token
//! occurrences inside the `x`/`y` parts of nesting patterns (Lemma C.2 restricts
//! the real token to a substring of `x²`/`y²`) and generalises their lexical rules
//! with Angluin's L\* (paper Algorithm 4, line 6). Compatibility of a tokenizer
//! with a nesting pattern follows Definition 5.1: the converted `x` part must
//! contain an unmatched artificial call marker whose paired return marker is
//! unmatched in the converted `y` part.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mat::Mat;
use crate::nesting::{candidate_nesting, NestingConfig, NestingPattern};
use crate::tokenizer::{PartialTokenizer, TokenMatcher, TokenPair};
use vstar_automata::lstar::{learn_dfa, LStarConfig};
use vstar_automata::Dfa;

/// Configuration for [`token_infer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenInferConfig {
    /// Upper bound on the pumping bound `K` of `candidateNesting`.
    pub max_k: usize,
    /// Limits for nesting-pattern enumeration.
    pub nesting: NestingConfig,
    /// Whether multi-character token lexical rules are generalised with L\*
    /// (disabled, tokens stay literal strings).
    pub generalize: bool,
    /// Maximum length of a candidate token occurrence considered inside `x`/`y`.
    pub max_token_len: usize,
    /// The `k` of the k-Repetition check used when tokenizing.
    pub k_repetition: usize,
    /// Rounds of overgeneralisation refinement applied after each L\* run.
    pub refinement_rounds: usize,
    /// Number of hypothesis samples drawn per refinement round.
    pub refinement_samples: usize,
    /// RNG seed for hypothesis sampling.
    pub rng_seed: u64,
}

impl Default for TokenInferConfig {
    fn default() -> Self {
        TokenInferConfig {
            max_k: 3,
            nesting: NestingConfig::default(),
            generalize: true,
            max_token_len: 12,
            k_repetition: 2,
            refinement_rounds: 4,
            refinement_samples: 60,
            rng_seed: 0x70ce,
        }
    }
}

/// Is the partial tokenizer compatible with one nesting pattern (Definition 5.1)?
///
/// The definition asks for an artificial call marker that is unmatched inside
/// `conv(x)` together with an unmatched paired return marker inside `conv(y)`.
/// Token occurrences may straddle the boundaries of the pattern's partition (the
/// paper's Lemma C.2 places the token inside `x²`/`y²`, not inside `x`/`y`), so the
/// check here works at the level of token *occurrences*: the tokenizer is
/// compatible when some matched call/return occurrence pair brackets the pattern —
/// the call occurrence overlaps `x` and its matching return closes at or after the
/// start of `y`, or symmetrically the return occurrence overlaps `y` and its
/// matching call opened at or before the end of `x`.
#[must_use]
pub fn tokenizer_compatible_with_pattern(
    tokenizer: &PartialTokenizer,
    mat: &Mat<'_>,
    pattern: &NestingPattern,
) -> bool {
    if tokenizer.is_empty() {
        return false;
    }
    let seed = pattern.seed();
    let matches = tokenizer.tokenize(mat, &seed);
    let (xs, xe) = pattern.x_range();
    let (ys, ye) = pattern.y_range();
    let overlaps =
        |m: &crate::tokenizer::TokenMatch, lo: usize, hi: usize| m.start < hi && m.end > lo;

    // Pair up call and return occurrences structurally (stack discipline).
    let mut stack: Vec<usize> = Vec::new();
    let mut partners: Vec<(usize, usize)> = Vec::new();
    let mut unmatched_calls: Vec<usize> = Vec::new();
    let mut unmatched_rets: Vec<usize> = Vec::new();
    for (idx, m) in matches.iter().enumerate() {
        match m.kind {
            crate::tokenizer::TokenKind::Call => stack.push(idx),
            crate::tokenizer::TokenKind::Return => match stack.pop() {
                Some(call_idx) => partners.push((call_idx, idx)),
                None => unmatched_rets.push(idx),
            },
        }
    }
    unmatched_calls.extend(stack);

    // Criterion 1 (bracketing pair): a matched call/return occurrence pair of the
    // same token pair brackets the pattern — the call overlaps x and its return
    // closes at or after the start of y, or symmetrically.
    let bracketing_pair = partners.iter().any(|&(ci, ri)| {
        let (c, r) = (&matches[ci], &matches[ri]);
        c.pair == r.pair
            && ((overlaps(c, xs, xe) && r.start >= ys) || (overlaps(r, ys, ye) && c.end <= xe))
    });

    // Criterion 2 (region-unmatched, the letter of Definitions 4.5/5.1): some
    // pair-i call occurrence overlapping x is not closed inside x, and some pair-i
    // return occurrence overlapping y is not opened inside y.
    let partner_of = |idx: usize| -> Option<usize> {
        partners.iter().find_map(|&(c, r)| {
            if c == idx {
                Some(r)
            } else if r == idx {
                Some(c)
            } else {
                None
            }
        })
    };
    let region_unmatched = (0..tokenizer.pair_count()).any(|pair| {
        let call_witness = matches.iter().enumerate().any(|(idx, m)| {
            m.pair == pair
                && m.kind == crate::tokenizer::TokenKind::Call
                && overlaps(m, xs, xe)
                && partner_of(idx).is_none_or(|p| !overlaps(&matches[p], xs, xe))
        });
        let ret_witness = matches.iter().enumerate().any(|(idx, m)| {
            m.pair == pair
                && m.kind == crate::tokenizer::TokenKind::Return
                && overlaps(m, ys, ye)
                && partner_of(idx).is_none_or(|p| !overlaps(&matches[p], ys, ye))
        });
        call_witness && ret_witness
    });

    // Occurrences left entirely unmatched are covered by criterion 2 (their partner
    // is `None`).
    let _ = (&unmatched_calls, &unmatched_rets);
    bracketing_pair || region_unmatched
}

/// Is the tokenizer compatible with the seeds (all conversions well matched) and
/// with every pattern in `patterns`?
#[must_use]
pub fn tokenizer_compatible(
    tokenizer: &PartialTokenizer,
    mat: &Mat<'_>,
    seeds: &[String],
    patterns: &[NestingPattern],
) -> bool {
    seeds.iter().all(|s| tokenizer.converts_to_well_matched(mat, s))
        && patterns.iter().all(|p| tokenizer_compatible_with_pattern(tokenizer, mat, p))
}

/// Infers a partial tokenizer compatible with the seed strings (Algorithm 4).
///
/// `alphabet` is the oracle's character alphabet Σ, used by the L\* generalisation
/// of token lexical rules. Returns `None` when no compatible tokenizer is found for
/// any `K ≤ config.max_k`. An empty tokenizer is returned for seeds without nesting
/// patterns (regular-looking languages).
#[must_use]
pub fn token_infer(
    mat: &Mat<'_>,
    seeds: &[String],
    alphabet: &[char],
    config: &TokenInferConfig,
) -> Option<PartialTokenizer> {
    for big_k in 2..=config.max_k.max(2) {
        let patterns = candidate_nesting(mat, seeds, big_k, &config.nesting);
        let empty = PartialTokenizer::new().with_k_repetition(config.k_repetition);
        if let Some(d) = token_search(mat, seeds, alphabet, &patterns, &[], &empty, config) {
            return Some(d);
        }
    }
    None
}

/// The backtracking `tokenSearch` of Algorithm 4.
fn token_search(
    mat: &Mat<'_>,
    seeds: &[String],
    alphabet: &[char],
    remaining: &[NestingPattern],
    done: &[NestingPattern],
    tokenizer: &PartialTokenizer,
    config: &TokenInferConfig,
) -> Option<PartialTokenizer> {
    let Some((pattern, rest)) = remaining.split_first() else {
        return Some(tokenizer.clone());
    };
    let mut done_plus: Vec<NestingPattern> = done.to_vec();
    done_plus.push(pattern.clone());

    if tokenizer_compatible_with_pattern(tokenizer, mat, pattern) {
        return token_search(mat, seeds, alphabet, rest, &done_plus, tokenizer, config);
    }

    for (call_occ, ret_occ) in candidate_occurrences(pattern, config) {
        let seed = pattern.seed();
        let call_lit = slice(&seed, call_occ);
        let ret_lit = slice(&seed, ret_occ);
        if call_lit == ret_lit {
            continue;
        }
        // A real token occurrence must not be k-repeatable at its position.
        if is_repeatable(mat, &seed, call_occ, config.k_repetition)
            || is_repeatable(mat, &seed, ret_occ, config.k_repetition)
        {
            continue;
        }
        // Cheap screening with literal matchers before investing in L*
        // generalisation: the literal pair must already be compatible with the
        // current pattern. Single-character candidates are never generalised, so
        // for them the full (all-seeds) check is also performed on the literal
        // pair; multi-character candidates may legitimately need generalisation to
        // cover other seeds (e.g. an XML open tag with attributes), so their
        // all-seeds check is deferred until after L*.
        let single_char = call_occ.1 - call_occ.0 == 1 && ret_occ.1 - ret_occ.0 == 1;
        let mut literal = tokenizer.clone();
        literal.push_pair(TokenPair {
            call: TokenMatcher::Literal(call_lit.clone()),
            ret: TokenMatcher::Literal(ret_lit.clone()),
        });
        if !tokenizer_compatible_with_pattern(&literal, mat, pattern) {
            continue;
        }
        if single_char && !seeds.iter().all(|s| literal.converts_to_well_matched(mat, s)) {
            continue;
        }
        let call_matcher = build_matcher(mat, seeds, &seed, call_occ, alphabet, config);
        let ret_matcher = build_matcher(mat, seeds, &seed, ret_occ, alphabet, config);
        let mut extended = tokenizer.clone();
        extended.push_pair(TokenPair { call: call_matcher, ret: ret_matcher });
        let generalised = matches!(
            extended.pairs().last(),
            Some(TokenPair { call: TokenMatcher::Dfa(_), .. })
                | Some(TokenPair { ret: TokenMatcher::Dfa(_), .. })
        );
        // Try the generalised pair first, falling back to the literal pair.
        let candidates: Vec<PartialTokenizer> =
            if generalised { vec![extended, literal] } else { vec![extended] };
        for candidate in candidates {
            if tokenizer_compatible(&candidate, mat, seeds, &done_plus) {
                if let Some(result) =
                    token_search(mat, seeds, alphabet, rest, &done_plus, &candidate, config)
                {
                    return Some(result);
                }
            }
        }
    }
    if std::env::var_os("VSTAR_DEBUG_TOKENS").is_some() {
        eprintln!(
            "[token_infer] no viable token pair for pattern {pattern} (current tokenizer has {} pair(s))",
            tokenizer.pair_count()
        );
    }
    None
}

/// Candidate (call occurrence, return occurrence) ranges inside the `x`/`y` parts of
/// a pattern, outermost/longest-first. Ranges are character ranges into the seed.
fn candidate_occurrences(
    pattern: &NestingPattern,
    config: &TokenInferConfig,
) -> Vec<((usize, usize), (usize, usize))> {
    let (xs, xe) = pattern.x_range();
    let (ys, ye) = pattern.y_range();
    let subranges = |lo: usize, hi: usize| -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for start in lo..hi {
            for end in (start + 1..=hi).rev() {
                if end - start <= config.max_token_len {
                    out.push((start, end));
                }
            }
        }
        // Shortest first, then leftmost. Short candidates are tried first because a
        // call token that drags surrounding context along (e.g. `{"a":` instead of
        // `{`) over-commits the tokenizer; the Definition-5.1 compatibility check
        // rejects candidates that are too short (such as `<` alone for XML, whose
        // conversion is already matched inside `x`), so the search settles on the
        // shortest candidate that genuinely carries the nesting structure.
        out.sort_by_key(|&(s, e)| (e - s, s));
        out
    };
    let mut pairs = Vec::new();
    for call in subranges(xs, xe) {
        for ret in subranges(ys, ye) {
            pairs.push((call, ret));
        }
    }
    pairs
}

fn slice(seed: &str, range: (usize, usize)) -> String {
    seed.chars().skip(range.0).take(range.1 - range.0).collect()
}

fn is_repeatable(mat: &Mat<'_>, seed: &str, range: (usize, usize), k: usize) -> bool {
    let chars: Vec<char> = seed.chars().collect();
    let prefix: String = chars[..range.0].iter().collect();
    let body: String = chars[range.0..range.1].iter().collect();
    let suffix: String = chars[range.1..].iter().collect();
    mat.member(&format!("{prefix}{}{suffix}", body.repeat(k.max(2))))
}

/// Builds the matcher for one token occurrence: a literal for single characters, an
/// L\*-learned DFA otherwise (when generalisation is enabled).
fn build_matcher(
    mat: &Mat<'_>,
    seeds: &[String],
    seed: &str,
    occ: (usize, usize),
    alphabet: &[char],
    config: &TokenInferConfig,
) -> TokenMatcher {
    let lit = slice(seed, occ);
    if !config.generalize || lit.chars().count() <= 1 {
        return TokenMatcher::Literal(lit);
    }
    match learn_token_dfa(mat, seeds, seed, occ, alphabet, config) {
        Some(dfa) if dfa.accepts(&lit) => TokenMatcher::Dfa(dfa),
        _ => TokenMatcher::Literal(lit),
    }
}

/// Learns the lexical rule of a token with L\* (paper Algorithm 4, line 6).
///
/// Membership of a candidate token string `w` requires (per the paper's Token Fixed
/// Prefix and Suffix and Exclusivity assumptions):
/// * `w` starts with the occurrence's first character and ends with its last,
/// * neither of those boundary characters occurs in the interior of `w`,
/// * the seed string remains valid when the occurrence is replaced by `w`.
///
/// Equivalence queries are simulated with test strings derived from the occurrence
/// (substitutions, insertions, deletions and prefix/suffix combinations), followed
/// by refinement rounds that sample members of the hypothesis DFA and check them
/// against the oracle, catching overgeneralisation.
fn learn_token_dfa(
    mat: &Mat<'_>,
    seeds: &[String],
    seed: &str,
    occ: (usize, usize),
    alphabet: &[char],
    config: &TokenInferConfig,
) -> Option<Dfa> {
    let chars: Vec<char> = seed.chars().collect();
    let occurrence: Vec<char> = chars[occ.0..occ.1].to_vec();
    let prefix_ctx: String = chars[..occ.0].iter().collect();
    let suffix_ctx: String = chars[occ.1..].iter().collect();
    let first = *occurrence.first()?;
    let last = *occurrence.last()?;

    let max_len = occurrence.len() + 8;
    let membership = move |w: &str| -> bool {
        let wc: Vec<char> = w.chars().collect();
        if wc.is_empty() || wc.len() > max_len {
            return false;
        }
        if wc[0] != first || *wc.last().expect("nonempty") != last {
            return false;
        }
        if wc.len() > 1 {
            let interior = &wc[1..wc.len() - 1];
            if interior.contains(&first) || interior.contains(&last) {
                return false;
            }
        }
        mat.member(&format!("{prefix_ctx}{w}{suffix_ctx}"))
    };

    // Initial test pool: the occurrence, boundary-framed substrings, single-symbol
    // substitutions, insertions and deletions.
    let occ_str: String = occurrence.iter().collect();
    let mut tests: Vec<String> = vec![occ_str.clone(), String::new(), first.to_string()];
    for i in 0..occurrence.len() {
        for &a in alphabet {
            // substitution
            let mut sub = occurrence.clone();
            sub[i] = a;
            tests.push(sub.iter().collect());
            // insertion
            let mut ins = occurrence.clone();
            ins.insert(i, a);
            tests.push(ins.iter().collect());
        }
        // deletion
        let mut del = occurrence.clone();
        del.remove(i);
        tests.push(del.iter().collect());
        // prefix/suffix combinations q..i + j..g
        for j in i..occurrence.len() {
            let combined: String = occurrence[..i].iter().chain(occurrence[j..].iter()).collect();
            tests.push(combined);
        }
    }
    // Substrings of *all* seed strings framed by the token's first/last character
    // (the paper simulates token-level equivalence with strings combined from the
    // seeds): these expose token variants that the current seed alone does not,
    // e.g. an XML open tag that carries an attribute.
    for other in seeds {
        let oc: Vec<char> = other.chars().collect();
        for start in 0..oc.len() {
            if oc[start] != first {
                continue;
            }
            for end in start + 1..=oc.len().min(start + max_len) {
                if oc[end - 1] == last {
                    tests.push(oc[start..end].iter().collect());
                }
            }
        }
    }
    tests.sort();
    tests.dedup();

    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut dfa = learn_dfa(alphabet, &membership, &LStarConfig::with_test_strings(tests.clone()));
    for _ in 0..config.refinement_rounds {
        let mut new_counterexamples = Vec::new();
        for sample in sample_dfa_members(&dfa, &mut rng, config.refinement_samples, max_len) {
            if !membership(&sample) {
                new_counterexamples.push(sample);
            }
        }
        if new_counterexamples.is_empty() {
            break;
        }
        tests.extend(new_counterexamples);
        tests.sort();
        tests.dedup();
        dfa = learn_dfa(alphabet, &membership, &LStarConfig::with_test_strings(tests.clone()));
    }
    Some(dfa)
}

/// Randomly samples accepted strings of a DFA by biased random walks.
fn sample_dfa_members(dfa: &Dfa, rng: &mut StdRng, count: usize, max_len: usize) -> Vec<String> {
    let alphabet: Vec<char> = dfa.alphabet().to_vec();
    let mut out = Vec::new();
    for _ in 0..count {
        let mut state = dfa.initial();
        let mut word = String::new();
        for _ in 0..max_len {
            if dfa.accepting().contains(&state) && rng.gen_bool(0.3) {
                break;
            }
            let choices: Vec<(char, usize)> =
                alphabet.iter().filter_map(|&c| dfa.delta(state, c).map(|t| (c, t))).collect();
            if choices.is_empty() {
                break;
            }
            let &(c, t) = &choices[rng.gen_range(0..choices.len())];
            word.push(c);
            state = t;
        }
        if dfa.accepting().contains(&state) {
            out.push(word);
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::TokenKind;

    fn toy_xml(s: &str) -> bool {
        fn parse(s: &[u8], pos: usize) -> Option<usize> {
            if s[pos..].starts_with(b"<p>") {
                let inner = parse(s, pos + 3)?;
                s[inner..].starts_with(b"</p>").then_some(inner + 4)
            } else {
                let mut i = pos;
                while i < s.len() && s[i].is_ascii_lowercase() {
                    i += 1;
                }
                (i > pos).then_some(i)
            }
        }
        s.is_ascii() && parse(s.as_bytes(), 0) == Some(s.len())
    }

    fn dyck(s: &str) -> bool {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    fn small_alphabet() -> Vec<char> {
        let mut a = vec!['<', '>', '/'];
        a.extend('a'..='r');
        a
    }

    #[test]
    fn single_char_tokens_for_dyck() {
        let oracle = dyck;
        let mat = Mat::new(&oracle);
        let seeds = vec!["(x)".to_string()];
        let tokenizer =
            token_infer(&mat, &seeds, &['(', ')', 'x'], &TokenInferConfig::default()).unwrap();
        assert_eq!(tokenizer.pair_count(), 1);
        let matches = tokenizer.tokenize(&mat, "((x)x)");
        assert_eq!(matches.len(), 4);
        assert!(tokenizer.converts_to_well_matched(&mat, "((x)x)"));
    }

    #[test]
    fn toy_xml_tokens_are_inferred_from_figure2_seed() {
        let oracle = toy_xml;
        let mat = Mat::new(&oracle);
        let seeds = vec!["<p><p>p</p></p>".to_string()];
        let config = TokenInferConfig { generalize: false, ..TokenInferConfig::default() };
        let tokenizer = token_infer(&mat, &seeds, &small_alphabet(), &config).unwrap();
        assert_eq!(tokenizer.pair_count(), 1);
        // The inferred pair must tokenize the seed into the 4 tags of the paper's
        // walkthrough (OPEN OPEN … CLOSE CLOSE).
        let matches = tokenizer.tokenize(&mat, "<p><p>p</p></p>");
        assert_eq!(matches.len(), 4, "{tokenizer}");
        assert_eq!(matches[0].kind, TokenKind::Call);
        assert_eq!(matches[3].kind, TokenKind::Return);
        assert!(tokenizer.converts_to_well_matched(&mat, "<p>x</p>"));
    }

    #[test]
    fn compatibility_definition_on_toy_xml() {
        let oracle = toy_xml;
        let mat = Mat::new(&oracle);
        let seed = "<p><p>p</p></p>";
        // Outermost pattern: x = "<p>", y = "</p>" (first open / last close).
        let pattern = NestingPattern::new(seed, (0, 3), (11, 15));
        let mut good = PartialTokenizer::new();
        good.push_pair(TokenPair {
            call: TokenMatcher::Literal("<p>".to_string()),
            ret: TokenMatcher::Literal("</p>".to_string()),
        });
        assert!(tokenizer_compatible_with_pattern(&good, &mat, &pattern));
        // An empty tokenizer is incompatible with any pattern.
        assert!(!tokenizer_compatible_with_pattern(&PartialTokenizer::new(), &mat, &pattern));
        assert!(tokenizer_compatible(&good, &mat, &[seed.to_string()], &[pattern]));
    }

    #[test]
    fn regular_language_yields_empty_tokenizer() {
        let oracle = |s: &str| s.chars().all(|c| c == 'a');
        let mat = Mat::new(&oracle);
        let seeds = vec!["aaa".to_string()];
        let tokenizer = token_infer(&mat, &seeds, &['a'], &TokenInferConfig::default()).unwrap();
        assert!(tokenizer.is_empty());
    }

    #[test]
    fn generalized_xml_open_tag_learned_with_lstar() {
        // Simplified XML where tags are <name> ... </name> over letters a..e and
        // close names need not match open names; text is letters.
        fn xml(s: &str) -> bool {
            fn name(s: &[u8], pos: usize) -> Option<usize> {
                let mut i = pos;
                while i < s.len() && (b'a'..=b'e').contains(&s[i]) {
                    i += 1;
                }
                (i > pos).then_some(i)
            }
            fn element(s: &[u8], pos: usize) -> Option<usize> {
                if s.get(pos) != Some(&b'<') {
                    return None;
                }
                let p = name(s, pos + 1)?;
                if s.get(p) != Some(&b'>') {
                    return None;
                }
                let mut p = p + 1;
                loop {
                    match s.get(p) {
                        Some(b'<') if s.get(p + 1) == Some(&b'/') => {
                            let q = name(s, p + 2)?;
                            return (s.get(q) == Some(&b'>')).then_some(q + 1);
                        }
                        Some(b'<') => p = element(s, p)?,
                        Some(c) if (b'a'..=b'e').contains(c) => p += 1,
                        _ => return None,
                    }
                }
            }
            s.is_ascii() && element(s.as_bytes(), 0) == Some(s.len())
        }
        let oracle = xml;
        let mat = Mat::new(&oracle);
        let seed = "<a><b>c</b></a>";
        assert!(xml(seed));
        let alphabet: Vec<char> = vec!['<', '>', '/', 'a', 'b', 'c', 'd', 'e'];
        // Learn the lexical rule of the open tag directly.
        let config = TokenInferConfig::default();
        let seeds = vec![seed.to_string()];
        let dfa = learn_token_dfa(&mat, &seeds, seed, (0, 3), &alphabet, &config).unwrap();
        assert!(dfa.accepts("<a>"));
        assert!(dfa.accepts("<d>"));
        assert!(dfa.accepts("<ab>"));
        assert!(!dfa.accepts("<>"));
        assert!(!dfa.accepts("</a>"));
        assert!(!dfa.accepts("<a"));
        // And the close tag.
        let dfa_close = learn_token_dfa(&mat, &seeds, seed, (11, 15), &alphabet, &config).unwrap();
        assert!(dfa_close.accepts("</a>"));
        assert!(dfa_close.accepts("</db>"));
        assert!(!dfa_close.accepts("<a>"));
    }

    #[test]
    fn candidate_occurrences_prefer_shortest() {
        let pattern = NestingPattern::new("<p>x</p>", (0, 3), (4, 8));
        let config = TokenInferConfig::default();
        let cands = candidate_occurrences(&pattern, &config);
        // Shortest candidates first (single characters), whole-x/whole-y last.
        assert_eq!(cands[0].0 .1 - cands[0].0 .0, 1);
        assert_eq!(cands[0].1 .1 - cands[0].1 .0, 1);
        let last = cands.last().unwrap();
        assert_eq!(last.0, (0, 3));
        assert_eq!(last.1, (4, 8));
        assert!(cands.len() > 1);
    }

    #[test]
    fn repeatable_occurrences_are_rejected() {
        // In a JSON-ish string, a brace inside a string literal is repeatable and
        // must not be chosen as a token occurrence.
        let oracle = |s: &str| {
            // language: '"' [a-z{]* '"'
            let b = s.as_bytes();
            s.is_ascii()
                && b.len() >= 2
                && b[0] == b'"'
                && b[b.len() - 1] == b'"'
                && b[1..b.len() - 1].iter().all(|&c| c.is_ascii_lowercase() || c == b'{')
        };
        let mat = Mat::new(&oracle);
        assert!(is_repeatable(&mat, "\"a{b\"", (2, 3), 2));
        assert!(!is_repeatable(&mat, "\"a{b\"", (0, 1), 2));
    }
}
