//! The minimally adequate teacher (MAT) abstraction (paper §3.1 / §4.1).
//!
//! A black-box program provides only membership queries; [`Mat`] wraps the program
//! with a cache and a unique-query counter (matching the paper's "#Queries" metric),
//! and exposes phase snapshots so the pipeline can attribute queries to token
//! inference vs. VPA learning (the "%Q(Token)" / "%Q(VPA)" columns of Table 1).
//! Equivalence queries are *not* part of the MAT; they are simulated from test
//! strings (see [`crate::equivalence`]).

use std::cell::RefCell;

use vstar_automata::QueryCache;

/// A membership-query teacher with caching and unique-query counting.
///
/// The cache/counter policy is the shared [`QueryCache`]; `Mat` adds interior
/// mutability so learners can hold `&Mat` while issuing queries.
pub struct Mat<'a> {
    oracle: &'a dyn Fn(&str) -> bool,
    state: RefCell<QueryCache>,
}

impl<'a> Mat<'a> {
    /// Wraps a membership function (typically a parser or recognizer).
    ///
    /// The oracle is treated as a black box; it must not (transitively) query
    /// this `Mat` itself, as the cache is borrowed while it runs.
    #[must_use]
    pub fn new(oracle: &'a dyn Fn(&str) -> bool) -> Self {
        Mat { oracle, state: RefCell::new(QueryCache::for_site("mat")) }
    }

    /// The membership query `χ_L(s)`: a single entry-style cache lookup that
    /// falls through to the oracle on the first occurrence of `s`.
    #[must_use]
    pub fn member(&self, s: &str) -> bool {
        self.state.borrow_mut().query(s, self.oracle)
    }

    /// Number of unique membership queries issued so far (cache misses).
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.state.borrow().unique_queries()
    }

    /// Number of membership calls including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.state.borrow().total_queries()
    }

    /// Number of cache hits (total minus unique queries).
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.state.borrow().hits()
    }

    /// Seeds the cache with a known answer without invoking the oracle and
    /// without counting a query. Corpus-driven learners use this to declare
    /// their training samples members up front: a positive corpus *is* a bag
    /// of answered membership queries, and hybrid learning should not pay
    /// oracle invocations to re-confirm its own training data. An
    /// already-cached answer is left untouched.
    pub fn assume(&self, s: &str, value: bool) {
        self.state.borrow_mut().preload(s, value);
    }

    /// Clears the cache and the counters.
    pub fn reset(&self) {
        self.state.borrow_mut().reset();
    }
}

impl std::fmt::Debug for Mat<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("Mat")
            .field("unique_queries", &state.unique_queries())
            .field("total_queries", &state.total_queries())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts_unique_queries() {
        let raw_calls = std::cell::Cell::new(0usize);
        let oracle = |s: &str| {
            raw_calls.set(raw_calls.get() + 1);
            s.len() < 3
        };
        let mat = Mat::new(&oracle);
        assert!(mat.member("ab"));
        assert!(mat.member("ab"));
        assert!(!mat.member("abcd"));
        assert_eq!(mat.unique_queries(), 2);
        assert_eq!(mat.total_queries(), 3);
        assert_eq!(raw_calls.get(), 2);
    }

    #[test]
    fn entry_path_preserves_counter_semantics() {
        // Regression test for the single entry-style lookup: the counters must
        // behave exactly like the old get-then-insert path — `total` counts
        // every call (hits included), `unique` counts first occurrences only,
        // and the oracle runs once per unique string, in any interleaving.
        let raw_calls = std::cell::Cell::new(0usize);
        let oracle = |s: &str| {
            raw_calls.set(raw_calls.get() + 1);
            s.contains('a')
        };
        let mat = Mat::new(&oracle);
        let sequence = ["a", "b", "a", "a", "c", "b", "abc"];
        for s in sequence {
            assert_eq!(mat.member(s), s.contains('a'), "answer for {s:?}");
        }
        assert_eq!(mat.total_queries(), sequence.len());
        assert_eq!(mat.unique_queries(), 4); // a, b, c, abc
        assert_eq!(raw_calls.get(), 4, "oracle must run once per unique string");
        // Answers stay stable on re-query.
        assert!(mat.member("a"));
        assert_eq!(mat.unique_queries(), 4);
        assert_eq!(mat.total_queries(), sequence.len() + 1);
    }

    #[test]
    fn assume_answers_without_querying_the_oracle() {
        let raw_calls = std::cell::Cell::new(0usize);
        let oracle = |_: &str| {
            raw_calls.set(raw_calls.get() + 1);
            false
        };
        let mat = Mat::new(&oracle);
        mat.assume("corpus word", true);
        assert!(mat.member("corpus word"), "the assumed answer wins");
        assert_eq!(raw_calls.get(), 0, "the oracle never runs for assumed strings");
        assert_eq!(mat.unique_queries(), 0);
        assert_eq!(mat.cache_hits(), 1);
        // A genuinely queried string keeps its oracle answer over a later assume.
        assert!(!mat.member("other"));
        mat.assume("other", true);
        assert!(!mat.member("other"));
    }

    #[test]
    fn reset_clears_everything() {
        let oracle = |_: &str| true;
        let mat = Mat::new(&oracle);
        let _ = mat.member("x");
        mat.reset();
        assert_eq!(mat.unique_queries(), 0);
        assert_eq!(mat.total_queries(), 0);
    }

    #[test]
    fn telemetry_counters_mirror_the_legacy_counters() {
        let guard = vstar_telemetry::install();
        let oracle = |s: &str| s.len() < 2;
        let mat = Mat::new(&oracle);
        for s in ["a", "bb", "a", "a", "c"] {
            let _ = mat.member(s);
        }
        let report = guard.finish();
        assert_eq!(report.facts.counter("query.mat.miss"), mat.unique_queries() as u64);
        assert_eq!(report.facts.counter("query.mat.hit"), mat.cache_hits() as u64);
        assert_eq!(mat.cache_hits(), 2);
    }

    #[test]
    fn debug_format() {
        let oracle = |_: &str| true;
        let mat = Mat::new(&oracle);
        assert!(format!("{mat:?}").contains("Mat"));
    }
}
