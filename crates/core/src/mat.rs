//! The minimally adequate teacher (MAT) abstraction (paper §3.1 / §4.1).
//!
//! A black-box program provides only membership queries; [`Mat`] wraps the program
//! with a cache and a unique-query counter (matching the paper's "#Queries" metric),
//! and exposes phase snapshots so the pipeline can attribute queries to token
//! inference vs. VPA learning (the "%Q(Token)" / "%Q(VPA)" columns of Table 1).
//! Equivalence queries are *not* part of the MAT; they are simulated from test
//! strings (see [`crate::equivalence`]).

use std::cell::RefCell;
use std::collections::HashMap;

/// A membership-query teacher with caching and unique-query counting.
pub struct Mat<'a> {
    oracle: &'a dyn Fn(&str) -> bool,
    state: RefCell<MatState>,
}

#[derive(Default)]
struct MatState {
    cache: HashMap<String, bool>,
    unique_queries: usize,
    total_queries: usize,
}

impl<'a> Mat<'a> {
    /// Wraps a membership function (typically a parser or recognizer).
    #[must_use]
    pub fn new(oracle: &'a dyn Fn(&str) -> bool) -> Self {
        Mat { oracle, state: RefCell::new(MatState::default()) }
    }

    /// The membership query `χ_L(s)`.
    #[must_use]
    pub fn member(&self, s: &str) -> bool {
        {
            let mut state = self.state.borrow_mut();
            state.total_queries += 1;
            if let Some(&v) = state.cache.get(s) {
                return v;
            }
        }
        let v = (self.oracle)(s);
        let mut state = self.state.borrow_mut();
        state.unique_queries += 1;
        state.cache.insert(s.to_owned(), v);
        v
    }

    /// Number of unique membership queries issued so far (cache misses).
    #[must_use]
    pub fn unique_queries(&self) -> usize {
        self.state.borrow().unique_queries
    }

    /// Number of membership calls including cache hits.
    #[must_use]
    pub fn total_queries(&self) -> usize {
        self.state.borrow().total_queries
    }

    /// Clears the cache and the counters.
    pub fn reset(&self) {
        *self.state.borrow_mut() = MatState::default();
    }
}

impl std::fmt::Debug for Mat<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("Mat")
            .field("unique_queries", &state.unique_queries)
            .field("total_queries", &state.total_queries)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts_unique_queries() {
        let raw_calls = std::cell::Cell::new(0usize);
        let oracle = |s: &str| {
            raw_calls.set(raw_calls.get() + 1);
            s.len() < 3
        };
        let mat = Mat::new(&oracle);
        assert!(mat.member("ab"));
        assert!(mat.member("ab"));
        assert!(!mat.member("abcd"));
        assert_eq!(mat.unique_queries(), 2);
        assert_eq!(mat.total_queries(), 3);
        assert_eq!(raw_calls.get(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let oracle = |_: &str| true;
        let mat = Mat::new(&oracle);
        let _ = mat.member("x");
        mat.reset();
        assert_eq!(mat.unique_queries(), 0);
        assert_eq!(mat.total_queries(), 0);
    }

    #[test]
    fn debug_format() {
        let oracle = |_: &str| true;
        let mat = Mat::new(&oracle);
        assert!(format!("{mat:?}").contains("Mat"));
    }
}
