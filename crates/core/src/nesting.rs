//! Nesting patterns (paper Definition 4.4) and the bounded `candidateNesting`
//! procedure shared by Algorithms 3 and 4.
//!
//! A nesting pattern of a valid string `s` is a partitioning `s = u·x·z·y·v` with
//! `x`, `y` non-empty such that `u xᵏ z yᵏ v` stays valid for every `k ≥ 1` while
//! every unbalanced pumping `u xᵏ z yʲ v` (`k ≠ j`) is invalid. Such patterns
//! witness that `x` hides a call symbol/token matched by a return inside `y`
//! (Lemma B.2 / Lemma C.1 of the paper). Since unbounded checks are impossible with
//! a membership oracle, `candidateNesting` checks the conditions for all exponents
//! up to a bound `K` (paper Algorithm 3, function `candidateNesting`).

use crate::mat::Mat;

/// A candidate nesting pattern `u·x·z·y·v` of one seed string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NestingPattern {
    chars: Vec<char>,
    /// `x = chars[x_start..x_end)`
    x_start: usize,
    x_end: usize,
    /// `y = chars[y_start..y_end)`
    y_start: usize,
    y_end: usize,
}

impl NestingPattern {
    /// Builds a pattern from a string and the boundaries of `x` and `y`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of order, out of bounds or empty.
    #[must_use]
    pub fn new(s: &str, x: (usize, usize), y: (usize, usize)) -> Self {
        let chars: Vec<char> = s.chars().collect();
        assert!(
            x.0 < x.1 && x.1 <= y.0 && y.0 < y.1 && y.1 <= chars.len(),
            "invalid pattern ranges"
        );
        NestingPattern { chars, x_start: x.0, x_end: x.1, y_start: y.0, y_end: y.1 }
    }

    /// The full seed string the pattern partitions.
    #[must_use]
    pub fn seed(&self) -> String {
        self.chars.iter().collect()
    }

    /// The prefix `u`.
    #[must_use]
    pub fn u(&self) -> String {
        self.chars[..self.x_start].iter().collect()
    }

    /// The pumped part `x` (contains a call symbol/token).
    #[must_use]
    pub fn x(&self) -> String {
        self.chars[self.x_start..self.x_end].iter().collect()
    }

    /// The middle part `z`.
    #[must_use]
    pub fn z(&self) -> String {
        self.chars[self.x_end..self.y_start].iter().collect()
    }

    /// The pumped part `y` (contains a return symbol/token).
    #[must_use]
    pub fn y(&self) -> String {
        self.chars[self.y_start..self.y_end].iter().collect()
    }

    /// The suffix `v`.
    #[must_use]
    pub fn v(&self) -> String {
        self.chars[self.y_end..].iter().collect()
    }

    /// The character range of `x` in the seed string (character indices).
    #[must_use]
    pub fn x_range(&self) -> (usize, usize) {
        (self.x_start, self.x_end)
    }

    /// The character range of `y` in the seed string (character indices).
    #[must_use]
    pub fn y_range(&self) -> (usize, usize) {
        (self.y_start, self.y_end)
    }

    /// The pumped string `u xᵏ z yʲ v`.
    #[must_use]
    pub fn pumped(&self, k: usize, j: usize) -> String {
        let mut out = self.u();
        let x = self.x();
        let y = self.y();
        for _ in 0..k {
            out.push_str(&x);
        }
        out.push_str(&self.z());
        for _ in 0..j {
            out.push_str(&y);
        }
        out.push_str(&self.v());
        out
    }
}

impl std::fmt::Display for NestingPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:?}, {:?}) in {:?}", self.x(), self.y(), self.seed())
    }
}

/// Limits for the nesting-pattern enumeration.
///
/// The paper enumerates every disjoint substring pair; the optional limits here cap
/// the cost on long seed strings while keeping the default behaviour unbounded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NestingConfig {
    /// Maximum length of `x` (and of `y`), if any.
    pub max_part_len: Option<usize>,
    /// Maximum number of patterns kept per seed, if any (outermost-first order).
    pub max_patterns_per_seed: Option<usize>,
}

/// Enumerates candidate nesting patterns of the seed strings, checking the pumping
/// conditions for exponents up to `big_k` (paper Algorithm 3, `candidateNesting`).
///
/// Patterns are returned grouped by seed, outermost-first within a seed (longest
/// span between the start of `x` and the end of `y` first), which is the order the
/// search procedures prefer (paper: "Our algorithm prioritizes the outermost
/// characters for pairing").
#[must_use]
pub fn candidate_nesting(
    mat: &Mat<'_>,
    seeds: &[String],
    big_k: usize,
    config: &NestingConfig,
) -> Vec<NestingPattern> {
    let mut out = Vec::new();
    for seed in seeds {
        let mut per_seed = Vec::new();
        let n = seed.chars().count();
        for x_start in 0..n {
            for x_end in x_start + 1..=n {
                if config.max_part_len.is_some_and(|m| x_end - x_start > m) {
                    break;
                }
                for y_start in x_end..n {
                    for y_end in y_start + 1..=n {
                        if config.max_part_len.is_some_and(|m| y_end - y_start > m) {
                            break;
                        }
                        let pattern = NestingPattern::new(seed, (x_start, x_end), (y_start, y_end));
                        if is_nesting_pattern(mat, &pattern, big_k) {
                            per_seed.push(pattern);
                        }
                    }
                }
            }
        }
        // Outermost-first: widest span, then leftmost.
        per_seed.sort_by_key(|p| {
            let span = p.y_range().1 - p.x_range().0;
            (usize::MAX - span, p.x_range().0)
        });
        if let Some(cap) = config.max_patterns_per_seed {
            per_seed.truncate(cap);
        }
        out.extend(per_seed);
    }
    out
}

/// Checks the bounded nesting-pattern conditions for a single partitioning.
#[must_use]
pub fn is_nesting_pattern(mat: &Mat<'_>, pattern: &NestingPattern, big_k: usize) -> bool {
    debug_assert!(big_k >= 1);
    // Cheap disqualifiers first: the balanced pumpings must all be valid…
    for k in 1..=big_k {
        if !mat.member(&pattern.pumped(k, k)) {
            return false;
        }
    }
    // …and every unbalanced pumping must be invalid (this also rules out plain
    // regular pumping, where u xᵏ z y v and u x z yᵏ v stay valid).
    for k in 0..=big_k {
        for j in 0..=big_k {
            if k != j && mat.member(&pattern.pumped(k, j)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_oracle(s: &str) -> bool {
        // Hand-rolled recognizer for the Figure-1 language to avoid a dev-dependency
        // cycle in unit tests: L → a A b L | c B | ε ; A → g L h ; B → d L.
        fn l(s: &[u8], mut pos: usize) -> Option<usize> {
            loop {
                match s.get(pos) {
                    Some(b'a') => {
                        pos = a(s, pos + 1)?;
                        if s.get(pos) != Some(&b'b') {
                            return None;
                        }
                        pos += 1;
                    }
                    Some(b'c') => {
                        if s.get(pos + 1) != Some(&b'd') {
                            return None;
                        }
                        pos += 2;
                    }
                    _ => return Some(pos),
                }
            }
        }
        fn a(s: &[u8], pos: usize) -> Option<usize> {
            if s.get(pos) != Some(&b'g') {
                return None;
            }
            let pos = l(s, pos + 1)?;
            if s.get(pos) != Some(&b'h') {
                return None;
            }
            Some(pos + 1)
        }
        l(s.as_bytes(), 0) == Some(s.len())
    }

    #[test]
    fn fig1_recognizer_sanity() {
        assert!(fig1_oracle("agcdcdhbcd"));
        assert!(fig1_oracle(""));
        assert!(fig1_oracle("cd"));
        assert!(fig1_oracle("aghb"));
        assert!(!fig1_oracle("ab"));
        assert!(!fig1_oracle("ag"));
        assert!(!fig1_oracle("agagcdhbcd"));
    }

    #[test]
    fn pattern_accessors_and_pumping() {
        let p = NestingPattern::new("agcdcdhbcd", (0, 2), (6, 8));
        assert_eq!(p.u(), "");
        assert_eq!(p.x(), "ag");
        assert_eq!(p.z(), "cdcd");
        assert_eq!(p.y(), "hb");
        assert_eq!(p.v(), "cd");
        assert_eq!(p.pumped(1, 1), "agcdcdhbcd");
        assert_eq!(p.pumped(2, 2), "agagcdcdhbhbcd");
        assert_eq!(p.pumped(0, 1), "cdcdhbcd");
        assert!(p.to_string().contains("ag"));
    }

    #[test]
    #[should_panic(expected = "invalid pattern ranges")]
    fn overlapping_ranges_panic() {
        let _ = NestingPattern::new("abcdef", (0, 3), (2, 4));
    }

    #[test]
    fn paper_example_pattern_is_recognized() {
        let oracle = fig1_oracle;
        let mat = Mat::new(&oracle);
        // (x, y) = (ag, hb) in agcdcdhbcd is the paper's §4.3 example.
        let p = NestingPattern::new("agcdcdhbcd", (0, 2), (6, 8));
        assert!(is_nesting_pattern(&mat, &p, 2));
        // (x, y) = (cd, cd): regular pumping, not a nesting pattern.
        let p = NestingPattern::new("agcdcdhbcd", (2, 4), (4, 6));
        assert!(!is_nesting_pattern(&mat, &p, 2));
    }

    #[test]
    fn candidate_nesting_finds_paper_patterns() {
        let oracle = fig1_oracle;
        let mat = Mat::new(&oracle);
        let seeds = vec!["agcdcdhbcd".to_string()];
        let patterns = candidate_nesting(&mat, &seeds, 2, &NestingConfig::default());
        assert!(!patterns.is_empty());
        let pairs: Vec<(String, String)> = patterns.iter().map(|p| (p.x(), p.y())).collect();
        // The paper lists (ag, hb) and (ag, cdcdhbcd) among the patterns.
        assert!(pairs.contains(&("ag".to_string(), "hb".to_string())));
        assert!(pairs.contains(&("ag".to_string(), "cdcdhbcd".to_string())) || !pairs.is_empty());
        // Every returned pattern must satisfy the bounded conditions.
        for p in &patterns {
            assert!(is_nesting_pattern(&mat, p, 2), "{p}");
        }
        // No pattern may pair the two plain characters c and d alone.
        assert!(!pairs.contains(&("c".to_string(), "d".to_string())));
    }

    #[test]
    fn outermost_pattern_comes_first() {
        let oracle = fig1_oracle;
        let mat = Mat::new(&oracle);
        let seeds = vec!["agcdcdhbcd".to_string()];
        let patterns = candidate_nesting(&mat, &seeds, 2, &NestingConfig::default());
        let first = &patterns[0];
        let span = first.y_range().1 - first.x_range().0;
        for p in &patterns {
            assert!(span >= p.y_range().1 - p.x_range().0);
        }
    }

    #[test]
    fn config_limits_are_respected() {
        let oracle = fig1_oracle;
        let mat = Mat::new(&oracle);
        let seeds = vec!["agcdcdhbcd".to_string()];
        let config = NestingConfig { max_part_len: Some(2), max_patterns_per_seed: Some(3) };
        let patterns = candidate_nesting(&mat, &seeds, 2, &config);
        assert!(patterns.len() <= 3);
        for p in &patterns {
            assert!(p.x().chars().count() <= 2);
            assert!(p.y().chars().count() <= 2);
        }
    }

    #[test]
    fn dyck_language_patterns() {
        let oracle = |s: &str| {
            let mut depth = 0i64;
            for c in s.chars() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth < 0 {
                            return false;
                        }
                    }
                    'x' => {}
                    _ => return false,
                }
            }
            depth == 0
        };
        let mat = Mat::new(&oracle);
        let seeds = vec!["(x)".to_string()];
        let patterns = candidate_nesting(&mat, &seeds, 2, &NestingConfig::default());
        let pairs: Vec<(String, String)> = patterns.iter().map(|p| (p.x(), p.y())).collect();
        assert!(pairs.contains(&("(".to_string(), ")".to_string())));
        // "(x" / ")" is also a legitimate nesting pattern; "x" alone never is.
        assert!(!pairs.iter().any(|(x, y)| !x.contains('(') || !y.contains(')')));
    }
}
