//! Temporary diagnostic (ignored by default): prints learning stats and failures.
use rand::rngs::StdRng;
use rand::SeedableRng;
use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Json, Language, WhileLang};

#[test]
#[ignore]
fn debug_json() {
    let lang = Json::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let vstar = VStar::new(VStarConfig::default());
    let seeds = lang.seeds();
    let result = vstar.learn(&mat, &lang.alphabet(), &seeds).unwrap();
    println!("stats: {:?}", result.stats);
    println!("tokenizer: {}", result.tokenizer);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let corpus = lang.generate_corpus(&mut rng, 14, 40);
    let mut failures = 0;
    for s in &corpus {
        if !result.accepts(&mat, s) {
            failures += 1;
            if failures <= 12 {
                println!("REJECTED member: {s:?}");
            }
        }
    }
    println!("failures: {failures}/{}", corpus.len());
}

#[test]
#[ignore]
fn debug_while() {
    let lang = WhileLang::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let vstar = VStar::new(VStarConfig::default());
    let seeds = lang.seeds();
    let result = vstar.learn(&mat, &lang.alphabet(), &seeds).unwrap();
    println!("stats: {:?}", result.stats);
    println!("tokenizer: {}", result.tokenizer);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let corpus = lang.generate_corpus(&mut rng, 14, 40);
    let mut failures = 0;
    for s in &corpus {
        if !result.accepts(&mat, s) {
            failures += 1;
            if failures <= 12 {
                println!("REJECTED member: {s:?}");
            }
        }
    }
    println!("failures: {failures}/{}", corpus.len());
}

#[test]
#[ignore]
fn debug_xml_tokens() {
    use vstar::token_infer::{token_infer, TokenInferConfig};
    use vstar_oracles::Xml;
    let lang = Xml::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let seeds = lang.seeds();
    println!("seeds: {seeds:?}");
    // Try with a single simple seed first.
    for subset in [vec![seeds[0].clone()], seeds[..2].to_vec(), seeds.clone()] {
        let t = token_infer(&mat, &subset, &lang.alphabet(), &TokenInferConfig::default());
        match &t {
            Some(tk) => println!("subset {:?} -> {}", subset.len(), tk),
            None => println!("subset {:?} -> NONE", subset.len()),
        }
    }
}

#[test]
#[ignore]
fn debug_xml_full() {
    use vstar_oracles::Xml;
    let lang = Xml::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let vstar = VStar::new(VStarConfig::default());
    match vstar.learn(&mat, &lang.alphabet(), &lang.seeds()) {
        Ok(result) => {
            println!("stats: {:?}", result.stats);
            println!("tokenizer: {}", result.tokenizer);
            let mut rng = StdRng::seed_from_u64(0xC0FFEE);
            let corpus = lang.generate_corpus(&mut rng, 20, 40);
            let mut failures = 0;
            for s in &corpus {
                if !result.accepts(&mat, s) {
                    failures += 1;
                    if failures <= 12 {
                        println!("REJECTED member: {s:?}");
                    }
                }
            }
            println!("failures: {failures}/{}", corpus.len());
        }
        Err(e) => println!("LEARNING FAILED: {e}"),
    }
}

#[test]
#[ignore]
fn debug_xml_blocking_pattern() {
    use vstar::nesting::candidate_nesting;
    use vstar::token_infer::{tokenizer_compatible_with_pattern, TokenInferConfig};
    use vstar::{PartialTokenizer, TokenMatcher, TokenPair};
    use vstar_automata::lstar::{learn_dfa, LStarConfig};
    use vstar_oracles::Xml;
    let lang = Xml::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let seeds: Vec<String> = lang.seeds()[..2].to_vec();
    // Hand-built "correct" OPEN/CLOSE token DFAs.
    let alphabet = lang.alphabet();
    let open_oracle = |w: &str| {
        let wc: Vec<char> = w.chars().collect();
        wc.len() >= 3
            && wc[0] == '<'
            && *wc.last().unwrap() == '>'
            && !wc[1..wc.len() - 1].iter().any(|&c| c == '<' || c == '>' || c == '/')
            && lang.accepts(&format!("{w}x</a>"))
    };
    let close_oracle = |w: &str| {
        let wc: Vec<char> = w.chars().collect();
        wc.len() >= 4
            && wc[0] == '<'
            && wc[1] == '/'
            && *wc.last().unwrap() == '>'
            && wc[2..wc.len() - 1].iter().all(|&c| c.is_ascii_lowercase())
    };
    let open = learn_dfa(
        &alphabet,
        &open_oracle,
        &LStarConfig::with_test_strings(vec![
            "<a>".into(),
            "<ab>".into(),
            "<>".into(),
            "</a>".into(),
            "<a".into(),
            "a>".into(),
            "<a k=\"v\">".into(),
            "<a b>".into(),
        ]),
    );
    let close = learn_dfa(
        &alphabet,
        &close_oracle,
        &LStarConfig::with_test_strings(vec![
            "</a>".into(),
            "</ab>".into(),
            "<a>".into(),
            "</>".into(),
            "</a".into(),
        ]),
    );
    let mut t = PartialTokenizer::new();
    t.push_pair(TokenPair { call: TokenMatcher::Dfa(open), ret: TokenMatcher::Dfa(close) });
    println!("tokenizer: {t}");
    for s in &seeds {
        println!("seed {s:?} well-matched: {}", t.converts_to_well_matched(&mat, s));
    }
    let config = TokenInferConfig::default();
    let patterns = candidate_nesting(&mat, &seeds, 2, &config.nesting);
    println!("{} patterns", patterns.len());
    let mut bad = 0;
    for p in &patterns {
        if !tokenizer_compatible_with_pattern(&t, &mat, p) {
            bad += 1;
            if bad <= 15 {
                println!("INCOMPATIBLE pattern: {p}");
            }
        }
    }
    println!("incompatible patterns: {bad}/{}", patterns.len());
}

#[test]
#[ignore]
fn debug_mathexpr_tokens() {
    use vstar::token_infer::{token_infer, TokenInferConfig};
    use vstar_oracles::MathExpr;
    let lang = MathExpr::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let seeds = lang.seeds();
    println!("seeds: {seeds:?}");
    let t = token_infer(&mat, &seeds, &lang.alphabet(), &TokenInferConfig::default());
    match &t {
        Some(tk) => println!("tokenizer -> {tk}"),
        None => println!("tokenizer -> NONE"),
    }
}
