//! Integration smoke tests: the full V-Star pipeline on the Table-1 oracle
//! languages (small seed sets, bounded checks). The full evaluation lives in the
//! bench crate; these tests assert that learning terminates and that the learned
//! recognizer agrees with the oracle on generated members and mutated non-members.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, VStar, VStarConfig};
use vstar_oracles::{Json, Language, Lisp, MathExpr, ToyXml, WhileLang, Xml};

/// Learns `lang` from its bundled seeds and checks agreement with the oracle on
/// random members (recall-style) and on the seeds' single-character mutations
/// (precision-style probes).
fn learn_and_check(lang: &dyn Language, seeds: &[String], budget: usize, samples: usize) {
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let vstar = VStar::new(VStarConfig::default());
    let result = vstar
        .learn(&mat, &lang.alphabet(), seeds)
        .unwrap_or_else(|e| panic!("{} learning failed: {e}", lang.name()));

    // Recall probes: random members must be accepted.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let corpus = lang.generate_corpus(&mut rng, budget, samples);
    let mut recall_hits = 0usize;
    for s in &corpus {
        if result.accepts(&mat, s) {
            recall_hits += 1;
        }
    }
    let recall = recall_hits as f64 / corpus.len().max(1) as f64;
    assert!(
        recall >= 0.9,
        "{}: recall {recall:.2} too low ({recall_hits}/{})",
        lang.name(),
        corpus.len()
    );

    // Precision probes: mutations of seeds that the oracle rejects should mostly be
    // rejected by the learned recognizer as well.
    let mut probes = 0usize;
    let mut agree = 0usize;
    for seed in seeds {
        let chars: Vec<char> = seed.chars().collect();
        for i in 0..chars.len() {
            let mut mutated = chars.clone();
            mutated.remove(i);
            let m: String = mutated.iter().collect();
            if !lang.accepts(&m) {
                probes += 1;
                if !result.accepts(&mat, &m) {
                    agree += 1;
                }
            }
        }
    }
    if probes > 0 {
        let precision_probe = agree as f64 / probes as f64;
        assert!(
            precision_probe >= 0.9,
            "{}: learned language accepts too many corrupted seeds ({agree}/{probes})",
            lang.name()
        );
    }
}

#[test]
fn toy_xml_full_pipeline() {
    let lang = ToyXml::new();
    learn_and_check(&lang, &lang.seeds(), 20, 40);
}

#[test]
fn json_full_pipeline() {
    let lang = Json::new();
    learn_and_check(&lang, &lang.seeds(), 14, 40);
}

#[test]
fn lisp_full_pipeline() {
    let lang = Lisp::new();
    learn_and_check(&lang, &lang.seeds(), 14, 40);
}

#[test]
fn mathexpr_full_pipeline() {
    let lang = MathExpr::new();
    learn_and_check(&lang, &lang.seeds(), 12, 40);
}

#[test]
fn while_full_pipeline() {
    let lang = WhileLang::new();
    learn_and_check(&lang, &lang.seeds(), 14, 40);
}

#[test]
fn xml_full_pipeline() {
    let lang = Xml::new();
    learn_and_check(&lang, &lang.seeds(), 20, 40);
}
