//! Conversion of a (well-matched) VPA into a well-matched VPG.
//!
//! V-Star's learner produces a VPA; the paper converts it into a VPG "using methods
//! outlined by Alur and Madhusudan \[2004\]" (§6). The construction used here is the
//! standard one: a nonterminal `N[p,q]` generates exactly the well-matched strings
//! that take state `p` to state `q` without inspecting the stack below the starting
//! height, and the start symbol unions `N[q0, qf]` over accepting `qf`.

use crate::grammar::{NonterminalId, RuleRhs, Vpg, VpgBuilder};
use crate::vpa::Vpa;

/// Converts a VPA into an equivalent well-matched VPG.
///
/// The resulting grammar generates exactly the *well-matched* strings accepted by
/// `vpa` (acceptance with an empty stack). The output is trimmed: unreachable and
/// unproductive nonterminals are removed.
///
/// # Example
///
/// ```
/// use vstar_vpl::{Tagging, VpaBuilder, vpa_to_vpg};
///
/// let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
/// let mut b = VpaBuilder::new(tagging);
/// let q0 = b.add_state();
/// let g = b.add_stack_symbol();
/// b.set_initial(q0);
/// b.add_accepting(q0);
/// b.call(q0, '(', q0, g).unwrap();
/// b.ret(q0, ')', g, q0).unwrap();
/// b.plain(q0, 'x', q0).unwrap();
/// let vpa = b.build().unwrap();
/// let vpg = vpa_to_vpg(&vpa);
/// assert!(vpg.accepts("(x(x))"));
/// assert!(!vpg.accepts("(x"));
/// ```
#[must_use]
pub fn vpa_to_vpg(vpa: &Vpa) -> Vpg {
    let n = vpa.state_count();
    let mut builder = VpgBuilder::new(vpa.tagging().clone());

    // Start nonterminal first so that it survives trimming as NonterminalId(0).
    let start = builder.nonterminal("S");
    let mut pair_nt = vec![vec![NonterminalId(0); n]; n];
    for (p, row) in pair_nt.iter_mut().enumerate() {
        for (q, nt) in row.iter_mut().enumerate() {
            *nt = builder.nonterminal(&format!("N[q{p},q{q}]"));
        }
    }

    // N[p,p] → ε
    for (p, row) in pair_nt.iter().enumerate() {
        builder.empty_rule(row[p]);
    }

    // Plain rules: N[p,q] → c N[p',q]
    let plain: Vec<_> = vpa.plain_transitions().collect();
    for &(p, c, p2) in &plain {
        for (&nt_pq, &nt_p2q) in pair_nt[p.0].iter().zip(&pair_nt[p2.0]) {
            builder.linear_rule(nt_pq, c, nt_p2q);
        }
    }

    // Matching rules: for call (p, ‹a) → (p1, γ) and return (q1, b›, γ) → p2:
    //   N[p,q] → ‹a N[p1,q1] b› N[p2,q]
    let calls: Vec<_> = vpa.call_transitions().collect();
    let rets: Vec<_> = vpa.return_transitions().collect();
    for &(p, a, p1, gamma) in &calls {
        for &(q1, b, gamma2, p2) in &rets {
            if gamma != gamma2 {
                continue;
            }
            for q in 0..n {
                builder.match_rule(pair_nt[p.0][q], a, pair_nt[p1.0][q1.0], b, pair_nt[p2.0][q]);
            }
        }
    }

    // Start symbol: copy the alternatives of N[q0, qf] for every accepting qf. This
    // keeps the strict rule shapes of Definition 3.1 while expressing the union.
    let q0 = vpa.initial().0;
    let mut start_rules: Vec<RuleRhs> = Vec::new();
    for qf in vpa.accepting() {
        let source = pair_nt[q0][qf.0];
        // The alternatives of `source` were all added above; recompute them here to
        // avoid borrowing issues with the builder.
        if q0 == qf.0 {
            start_rules.push(RuleRhs::Empty);
        }
        for &(p, c, p2) in &plain {
            if p.0 == q0 {
                start_rules.push(RuleRhs::Linear { plain: c, next: pair_nt[p2.0][qf.0] });
            }
        }
        for &(p, a, p1, gamma) in &calls {
            if p.0 != q0 {
                continue;
            }
            for &(q1, b, gamma2, p2) in &rets {
                if gamma != gamma2 {
                    continue;
                }
                start_rules.push(RuleRhs::Match {
                    call: a,
                    inner: pair_nt[p1.0][q1.0],
                    ret: b,
                    next: pair_nt[p2.0][qf.0],
                });
            }
        }
        let _ = source;
    }
    for rhs in start_rules {
        match rhs {
            RuleRhs::Empty => {
                builder.empty_rule(start);
            }
            RuleRhs::Linear { plain, next } => {
                builder.linear_rule(start, plain, next);
            }
            RuleRhs::Match { call, inner, ret, next } => {
                builder.match_rule(start, call, inner, ret, next);
            }
        }
    }

    builder.build(start).expect("conversion produces a structurally valid grammar").trimmed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagging::Tagging;
    use crate::vpa::VpaBuilder;
    use crate::words::all_strings;

    fn language_agrees(vpa: &Vpa, vpg: &Vpg, alphabet: &[char], max_len: usize) {
        for w in all_strings(alphabet, max_len) {
            assert_eq!(vpa.accepts(&w), vpg.accepts(&w), "VPA and converted VPG disagree on {w:?}");
        }
    }

    #[test]
    fn dyck_conversion_preserves_language() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let g = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.call(q0, '(', q0, g).unwrap();
        b.ret(q0, ')', g, q0).unwrap();
        b.plain(q0, 'x', q0).unwrap();
        let vpa = b.build().unwrap();
        let vpg = vpa_to_vpg(&vpa);
        language_agrees(&vpa, &vpg, &['(', ')', 'x'], 6);
    }

    #[test]
    fn two_state_conversion_preserves_language() {
        // { (^k x )^k | k ≥ 0 }
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let g = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q1);
        b.call(q0, '(', q0, g).unwrap();
        b.plain(q0, 'x', q1).unwrap();
        b.ret(q1, ')', g, q1).unwrap();
        let vpa = b.build().unwrap();
        let vpg = vpa_to_vpg(&vpa);
        assert!(vpg.accepts("x"));
        assert!(vpg.accepts("((x))"));
        assert!(!vpg.accepts("((x)"));
        language_agrees(&vpa, &vpg, &['(', ')', 'x'], 7);
    }

    #[test]
    fn distinct_stack_symbols_are_respected() {
        // Two call symbols pushing different stack symbols; returns must match.
        // Language: { a w b | w in D } ∪ { c w d | w in D } over pairs (a,b),(c,d)
        // where D is the Dyck-style body containing 'x' only.
        let tagging = Tagging::from_pairs([('a', 'b'), ('c', 'd')]).unwrap();
        let mut bld = VpaBuilder::new(tagging);
        let q0 = bld.add_state();
        let q1 = bld.add_state(); // inside any bracket
        let qf = bld.add_state();
        let ga = bld.add_stack_symbol();
        let gc = bld.add_stack_symbol();
        bld.set_initial(q0);
        bld.add_accepting(qf);
        bld.call(q0, 'a', q1, ga).unwrap();
        bld.call(q0, 'c', q1, gc).unwrap();
        bld.plain(q1, 'x', q1).unwrap();
        bld.ret(q1, 'b', ga, qf).unwrap();
        bld.ret(q1, 'd', gc, qf).unwrap();
        let vpa = bld.build().unwrap();
        let vpg = vpa_to_vpg(&vpa);
        assert!(vpg.accepts("axb"));
        assert!(vpg.accepts("cxd"));
        assert!(!vpg.accepts("axd"));
        assert!(!vpg.accepts("cxb"));
        language_agrees(&vpa, &vpg, &['a', 'b', 'c', 'd', 'x'], 5);
    }

    #[test]
    fn empty_language_conversion() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        b.set_initial(q0);
        // No accepting state: the language is empty.
        let vpa = b.build().unwrap();
        let vpg = vpa_to_vpg(&vpa);
        for w in all_strings(&['(', ')', 'x'], 4) {
            assert!(!vpg.accepts(&w));
        }
    }

    #[test]
    fn conversion_is_trimmed() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let _unreachable = b.add_state();
        let g = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.call(q0, '(', q0, g).unwrap();
        b.ret(q0, ')', g, q0).unwrap();
        let vpa = b.build().unwrap();
        let vpg = vpa_to_vpg(&vpa);
        // 2 states would give 4 pair nonterminals + start = 5; trimming should cut
        // the ones involving the unreachable state.
        assert!(vpg.nonterminal_count() <= 3, "got {}", vpg.nonterminal_count());
    }
}
