//! Visibly pushdown grammar / automaton substrate for the V-Star reproduction.
//!
//! This crate implements the formal machinery from Sections 3 and 4 of
//! *V-Star: Learning Visibly Pushdown Grammars from Program Inputs* (PLDI 2024):
//!
//! * [`Kind`] / [`TaggedChar`] — the partition of terminals into call, plain and
//!   return symbols (paper §3.2).
//! * [`Tagging`] — a tagging function `t : Σ → Σ̂` with uniquely paired call/return
//!   symbols (paper §4.1, "Unique Pairing" assumption).
//! * [`Vpg`] — well-matched visibly pushdown grammars (paper Definition 3.1), with a
//!   recognizer and bounded enumeration (random sampling lives downstream, in
//!   `vstar_parser`'s `GrammarSampler`).
//! * [`Vpa`] — deterministic visibly pushdown automata (paper §3.3) with
//!   configuration-level execution.
//! * [`nested`] — matching/nesting analysis of tagged strings (well-matchedness,
//!   matching positions, unmatched symbol counts).
//! * [`vpa_to_vpg()`] — the VPA → VPG conversion used by V-Star after learning
//!   (paper §6, following Alur & Madhusudan 2004).
//!
//! # Example
//!
//! ```
//! use vstar_vpl::{Tagging, VpgBuilder};
//!
//! // The running example of the paper (Figure 1):
//! //   L → ‹a A b› L | c B | ε      A → ‹g L h› E      B → d L      E → ε
//! let tagging = Tagging::from_pairs([('a', 'b'), ('g', 'h')]).unwrap();
//! let mut b = VpgBuilder::new(tagging);
//! let (l, a, bb, e) = (b.nonterminal("L"), b.nonterminal("A"), b.nonterminal("B"), b.nonterminal("E"));
//! b.match_rule(l, 'a', a, 'b', l);
//! b.linear_rule(l, 'c', bb);
//! b.empty_rule(l);
//! b.match_rule(a, 'g', l, 'h', e);
//! b.linear_rule(bb, 'd', l);
//! b.empty_rule(e);
//! let vpg = b.build(l).unwrap();
//! assert!(vpg.accepts("agcdcdhbcd"));
//! assert!(!vpg.accepts("agcdcdhbx"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod grammar;
pub mod nested;
pub mod symbol;
pub mod tagging;
pub mod vpa;
pub mod vpa_to_vpg;
pub mod words;

pub use error::VplError;
pub use grammar::{NonterminalId, RuleRhs, Vpg, VpgBuilder};
pub use symbol::{Kind, TaggedChar};
pub use tagging::Tagging;
pub use vpa::{StackSymId, StateId, Vpa, VpaBuilder};
pub use vpa_to_vpg::vpa_to_vpg;
