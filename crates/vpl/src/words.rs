//! Small word-enumeration helpers used by tests and exhaustive equivalence checks.

/// Enumerates every string over `alphabet` of length at most `max_len`, shortest
/// first (and in alphabet order within a length).
///
/// The number of strings grows as `|alphabet|^max_len`; keep the bound small.
#[must_use]
pub fn all_strings(alphabet: &[char], max_len: usize) -> Vec<String> {
    let mut out = vec![String::new()];
    let mut frontier = vec![String::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * alphabet.len());
        for prefix in &frontier {
            for &c in alphabet {
                let mut s = prefix.clone();
                s.push(c);
                next.push(s);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// Enumerates every contiguous substring (including the empty string once) of `s`.
#[must_use]
pub fn substrings(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = vec![String::new()];
    for i in 0..chars.len() {
        for j in i + 1..=chars.len() {
            out.push(chars[i..j].iter().collect());
        }
    }
    out
}

/// All prefixes of `s`, shortest first, including the empty prefix and `s` itself.
#[must_use]
pub fn prefixes(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    (0..=chars.len()).map(|i| chars[..i].iter().collect()).collect()
}

/// All suffixes of `s`, longest first, including `s` itself and the empty suffix.
#[must_use]
pub fn suffixes(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    (0..=chars.len()).map(|i| chars[i..].iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strings_counts() {
        let words = all_strings(&['a', 'b'], 3);
        assert_eq!(words.len(), 1 + 2 + 4 + 8);
        assert_eq!(words[0], "");
        assert!(words.contains(&"aba".to_string()));
    }

    #[test]
    fn all_strings_empty_alphabet() {
        assert_eq!(all_strings(&[], 5), vec![String::new()]);
    }

    #[test]
    fn substrings_of_abc() {
        let subs = substrings("abc");
        assert!(subs.contains(&String::new()));
        assert!(subs.contains(&"ab".to_string()));
        assert!(subs.contains(&"bc".to_string()));
        assert!(subs.contains(&"abc".to_string()));
        assert_eq!(subs.len(), 1 + 6);
    }

    #[test]
    fn prefix_suffix() {
        assert_eq!(prefixes("ab"), vec!["", "a", "ab"]);
        assert_eq!(suffixes("ab"), vec!["ab", "b", ""]);
    }
}
