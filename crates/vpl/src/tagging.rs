//! Tagging functions `t : Σ → Σ̂` (paper §4.1).
//!
//! A tagging maps every character to a call, return or plain symbol. Following the
//! paper's *Unique Pairing* assumption, a tagging is represented as a set of
//! disjoint `(call, return)` character pairs; every character not mentioned in a
//! pair is a plain symbol.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::VplError;
use crate::symbol::{Kind, TaggedChar};

/// A tagging function with uniquely paired call/return characters.
///
/// # Example
///
/// ```
/// use vstar_vpl::{Kind, Tagging};
///
/// let t = Tagging::from_pairs([('{', '}'), ('[', ']')]).unwrap();
/// assert_eq!(t.kind('{'), Kind::Call);
/// assert_eq!(t.kind(']'), Kind::Return);
/// assert_eq!(t.kind('x'), Kind::Plain);
/// assert!(t.is_well_matched("{[x]}"));
/// assert!(!t.is_well_matched("{[x}"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Tagging {
    /// The call/return pairs, in insertion order. The index of a pair is used as the
    /// module index of its call symbol in the k-SEVPA learner.
    pairs: Vec<(char, char)>,
    call_index: BTreeMap<char, usize>,
    ret_index: BTreeMap<char, usize>,
}

impl Tagging {
    /// The empty tagging: every character is a plain symbol.
    #[must_use]
    pub fn new() -> Self {
        Tagging::default()
    }

    /// Builds a tagging from `(call, return)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`VplError::AmbiguousTagging`] if a character appears in more than
    /// one role (e.g. both as a call and a return symbol, or in two pairs).
    pub fn from_pairs<I>(pairs: I) -> Result<Self, VplError>
    where
        I: IntoIterator<Item = (char, char)>,
    {
        let mut t = Tagging::new();
        for (call, ret) in pairs {
            t.add_pair(call, ret)?;
        }
        Ok(t)
    }

    /// Adds one `(call, return)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`VplError::AmbiguousTagging`] if either character is already used
    /// by this tagging (including `call == ret`).
    pub fn add_pair(&mut self, call: char, ret: char) -> Result<(), VplError> {
        if call == ret {
            return Err(VplError::AmbiguousTagging { ch: call });
        }
        for &ch in &[call, ret] {
            if self.call_index.contains_key(&ch) || self.ret_index.contains_key(&ch) {
                return Err(VplError::AmbiguousTagging { ch });
            }
        }
        let idx = self.pairs.len();
        self.pairs.push((call, ret));
        self.call_index.insert(call, idx);
        self.ret_index.insert(ret, idx);
        Ok(())
    }

    /// The number of call/return pairs (the `k` of the k-SEVPA).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if the tagging has no call/return pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `(call, return)` pairs in insertion order.
    #[must_use]
    pub fn pairs(&self) -> &[(char, char)] {
        &self.pairs
    }

    /// The call characters in pair order.
    pub fn call_symbols(&self) -> impl Iterator<Item = char> + '_ {
        self.pairs.iter().map(|&(c, _)| c)
    }

    /// The return characters in pair order.
    pub fn return_symbols(&self) -> impl Iterator<Item = char> + '_ {
        self.pairs.iter().map(|&(_, r)| r)
    }

    /// The kind assigned to `ch` by this tagging.
    #[must_use]
    pub fn kind(&self, ch: char) -> Kind {
        if self.call_index.contains_key(&ch) {
            Kind::Call
        } else if self.ret_index.contains_key(&ch) {
            Kind::Return
        } else {
            Kind::Plain
        }
    }

    /// The pair index (module index) of a call character, if it is one.
    #[must_use]
    pub fn call_pair_index(&self, ch: char) -> Option<usize> {
        self.call_index.get(&ch).copied()
    }

    /// The pair index of a return character, if it is one.
    #[must_use]
    pub fn return_pair_index(&self, ch: char) -> Option<usize> {
        self.ret_index.get(&ch).copied()
    }

    /// The return character paired with call character `call`, if any.
    #[must_use]
    pub fn matching_return(&self, call: char) -> Option<char> {
        self.call_index.get(&call).map(|&i| self.pairs[i].1)
    }

    /// The call character paired with return character `ret`, if any.
    #[must_use]
    pub fn matching_call(&self, ret: char) -> Option<char> {
        self.ret_index.get(&ret).map(|&i| self.pairs[i].0)
    }

    /// Tags a string: `t(s) = t(s[1]) … t(s[n])` (paper §4.1).
    #[must_use]
    pub fn tag(&self, s: &str) -> Vec<TaggedChar> {
        s.chars().map(|ch| TaggedChar { ch, kind: self.kind(ch) }).collect()
    }

    /// Returns `true` if `s` is well matched under this tagging: every call has a
    /// later matching return of the **paired** character, and vice versa.
    ///
    /// This is the notion used throughout the paper's tagging-inference algorithm:
    /// e.g. under the Figure-1 grammar, the tagging `{(a,h),(g,b)}` does *not* make
    /// `agcdcdhbcd` well matched even though the string is structurally balanced,
    /// because `a` would be closed by `b`, not by its paired return `h`.
    #[must_use]
    pub fn is_well_matched(&self, s: &str) -> bool {
        let tagged = self.tag(s);
        let Some(matches) = crate::nested::matching_positions(&tagged) else {
            return false;
        };
        tagged.iter().enumerate().all(|(i, t)| match t.kind {
            Kind::Call => {
                let j = matches[i].expect("calls are matched in a balanced string");
                self.matching_return(t.ch) == Some(tagged[j].ch)
            }
            _ => true,
        })
    }

    /// Whether this tagging is a sub-tagging of `other` (every pair of `self` is a
    /// pair of `other`).
    #[must_use]
    pub fn is_subset_of(&self, other: &Tagging) -> bool {
        self.pairs.iter().all(|p| other.pairs.contains(p))
    }
}

impl fmt::Display for Tagging {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, r)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(‹{c}, {r}›)")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tagging_is_all_plain() {
        let t = Tagging::new();
        assert!(t.is_empty());
        assert_eq!(t.kind('a'), Kind::Plain);
        assert!(t.is_well_matched("abc"));
    }

    #[test]
    fn from_pairs_assigns_kinds() {
        let t = Tagging::from_pairs([('a', 'b')]).unwrap();
        assert_eq!(t.kind('a'), Kind::Call);
        assert_eq!(t.kind('b'), Kind::Return);
        assert_eq!(t.kind('c'), Kind::Plain);
        assert_eq!(t.pair_count(), 1);
    }

    #[test]
    fn duplicate_characters_rejected() {
        assert!(Tagging::from_pairs([('a', 'a')]).is_err());
        assert!(Tagging::from_pairs([('a', 'b'), ('a', 'c')]).is_err());
        assert!(Tagging::from_pairs([('a', 'b'), ('c', 'b')]).is_err());
        assert!(Tagging::from_pairs([('a', 'b'), ('b', 'c')]).is_err());
    }

    #[test]
    fn pair_lookup() {
        let t = Tagging::from_pairs([('a', 'b'), ('g', 'h')]).unwrap();
        assert_eq!(t.matching_return('a'), Some('b'));
        assert_eq!(t.matching_call('h'), Some('g'));
        assert_eq!(t.matching_return('x'), None);
        assert_eq!(t.call_pair_index('g'), Some(1));
        assert_eq!(t.return_pair_index('b'), Some(0));
    }

    #[test]
    fn well_matchedness() {
        let t = Tagging::from_pairs([('a', 'b'), ('g', 'h')]).unwrap();
        assert!(t.is_well_matched(""));
        assert!(t.is_well_matched("agcdcdhbcd"));
        assert!(t.is_well_matched("ab"));
        assert!(!t.is_well_matched("a"));
        assert!(!t.is_well_matched("b"));
        assert!(!t.is_well_matched("ahgb")); // crossing pairs
        assert!(!t.is_well_matched("agbh")); // interleaved pairs
    }

    #[test]
    fn tag_preserves_characters() {
        let t = Tagging::from_pairs([('(', ')')]).unwrap();
        let tagged = t.tag("(x)");
        assert_eq!(tagged.len(), 3);
        assert_eq!(tagged[0], TaggedChar::call('('));
        assert_eq!(tagged[1], TaggedChar::plain('x'));
        assert_eq!(tagged[2], TaggedChar::ret(')'));
        assert_eq!(crate::symbol::untag(&tagged), "(x)");
    }

    #[test]
    fn subset_relation() {
        let small = Tagging::from_pairs([('a', 'b')]).unwrap();
        let big = Tagging::from_pairs([('a', 'b'), ('g', 'h')]).unwrap();
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(Tagging::new().is_subset_of(&small));
    }

    #[test]
    fn display_format() {
        let t = Tagging::from_pairs([('a', 'b')]).unwrap();
        assert_eq!(t.to_string(), "{(‹a, b›)}");
        assert_eq!(Tagging::new().to_string(), "{}");
    }
}
