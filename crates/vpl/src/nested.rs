//! Nesting analysis of tagged strings.
//!
//! These helpers implement the "well-matched" notions used throughout the paper:
//! matching positions of call/return symbols, unmatched-symbol counts (used in the
//! compatibility checks of Definitions 4.5 and 5.1) and nesting depth.

use crate::symbol::{Kind, TaggedChar};

/// Returns `true` if the tagged string is well matched: every call symbol is closed
/// by a later return symbol of the *paired* character for the tagging that produced
/// the string, and no return symbol appears without an open call.
///
/// Pairing is judged structurally: the matching return for a call is whichever return
/// closes it; callers that need character-level pairing should use
/// [`matching_positions`] and inspect the characters.
#[must_use]
pub fn is_well_matched(s: &[TaggedChar]) -> bool {
    matching_positions(s).is_some()
}

/// Computes the matching structure of a tagged string.
///
/// Returns `None` if the string is not well matched. Otherwise returns a vector
/// `m` with `m[i] = Some(j)` when position `i` is a call matched by the return at
/// position `j` (and symmetrically `m[j] = Some(i)`), and `m[i] = None` for plain
/// symbols.
#[must_use]
pub fn matching_positions(s: &[TaggedChar]) -> Option<Vec<Option<usize>>> {
    let mut out = vec![None; s.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in s.iter().enumerate() {
        match t.kind {
            Kind::Call => stack.push(i),
            Kind::Return => {
                let open = stack.pop()?;
                out[open] = Some(i);
                out[i] = Some(open);
            }
            Kind::Plain => {}
        }
    }
    if stack.is_empty() {
        Some(out)
    } else {
        None
    }
}

/// Counts of unmatched call and return symbols in a (possibly ill-matched) tagged
/// string.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct UnmatchedCounts {
    /// Number of call symbols whose matching return is *not* inside the string.
    pub calls: usize,
    /// Number of return symbols whose matching call is *not* inside the string.
    pub returns: usize,
}

impl UnmatchedCounts {
    /// Total number of unmatched symbols.
    #[must_use]
    pub fn total(self) -> usize {
        self.calls + self.returns
    }

    /// `true` when the string is well matched (no pending symbol on either side).
    #[must_use]
    pub fn is_balanced(self) -> bool {
        self.total() == 0
    }
}

/// Counts unmatched call and return symbols of a tagged string (paper's `n_c`, `n_d`
/// counts in the proof of Lemma B.3).
#[must_use]
pub fn unmatched_counts(s: &[TaggedChar]) -> UnmatchedCounts {
    let mut pending_calls = 0usize;
    let mut unmatched_returns = 0usize;
    for t in s {
        match t.kind {
            Kind::Call => pending_calls += 1,
            Kind::Return => {
                if pending_calls > 0 {
                    pending_calls -= 1;
                } else {
                    unmatched_returns += 1;
                }
            }
            Kind::Plain => {}
        }
    }
    UnmatchedCounts { calls: pending_calls, returns: unmatched_returns }
}

/// Positions (indices into `s`) of call symbols of character `call` that are
/// unmatched *within* `s` (their return lies outside the slice).
#[must_use]
pub fn unmatched_call_positions(s: &[TaggedChar], call: char) -> Vec<usize> {
    let mut stack: Vec<usize> = Vec::new();
    let mut result: Vec<usize> = Vec::new();
    for (i, t) in s.iter().enumerate() {
        match t.kind {
            Kind::Call => stack.push(i),
            Kind::Return => {
                stack.pop();
            }
            Kind::Plain => {}
        }
    }
    for i in stack {
        if s[i].ch == call {
            result.push(i);
        }
    }
    result
}

/// Positions of return symbols of character `ret` that are unmatched within `s`
/// (their call lies outside the slice).
#[must_use]
pub fn unmatched_return_positions(s: &[TaggedChar], ret: char) -> Vec<usize> {
    let mut depth = 0usize;
    let mut result = Vec::new();
    for (i, t) in s.iter().enumerate() {
        match t.kind {
            Kind::Call => depth += 1,
            Kind::Return => {
                if depth > 0 {
                    depth -= 1;
                } else if t.ch == ret {
                    result.push(i);
                }
            }
            Kind::Plain => {}
        }
    }
    result
}

/// Maximum nesting depth of a tagged string (0 for strings without call symbols).
///
/// Unmatched returns are ignored; unmatched calls still contribute to the depth of
/// the positions following them.
#[must_use]
pub fn nesting_depth(s: &[TaggedChar]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for t in s {
        match t.kind {
            Kind::Call => {
                depth += 1;
                max = max.max(depth);
            }
            Kind::Return => depth = depth.saturating_sub(1),
            Kind::Plain => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagging::Tagging;

    fn tag(s: &str) -> Vec<TaggedChar> {
        Tagging::from_pairs([('a', 'b'), ('g', 'h')]).unwrap().tag(s)
    }

    #[test]
    fn empty_is_well_matched() {
        assert!(is_well_matched(&tag("")));
        assert_eq!(nesting_depth(&tag("")), 0);
    }

    #[test]
    fn matching_positions_simple() {
        let m = matching_positions(&tag("agchb")).unwrap();
        assert_eq!(m[0], Some(4)); // a ... b
        assert_eq!(m[1], Some(3)); // g ... h
        assert_eq!(m[2], None); // c plain
        assert_eq!(m[4], Some(0));
    }

    #[test]
    fn matching_positions_rejects_ill_matched() {
        assert!(matching_positions(&tag("a")).is_none());
        assert!(matching_positions(&tag("b")).is_none());
        assert!(matching_positions(&tag("ba")).is_none());
    }

    #[test]
    fn unmatched_counts_cases() {
        assert_eq!(unmatched_counts(&tag("ab")).total(), 0);
        let c = unmatched_counts(&tag("aab"));
        assert_eq!(c, UnmatchedCounts { calls: 1, returns: 0 });
        let c = unmatched_counts(&tag("abb"));
        assert_eq!(c, UnmatchedCounts { calls: 0, returns: 1 });
        let c = unmatched_counts(&tag("ba"));
        assert_eq!(c, UnmatchedCounts { calls: 1, returns: 1 });
        assert!(!c.is_balanced());
    }

    #[test]
    fn unmatched_positions_by_character() {
        // "ag" : both unmatched calls
        let s = tag("ag");
        assert_eq!(unmatched_call_positions(&s, 'a'), vec![0]);
        assert_eq!(unmatched_call_positions(&s, 'g'), vec![1]);
        assert_eq!(unmatched_call_positions(&s, 'x'), Vec::<usize>::new());
        // "hb": both unmatched returns
        let s = tag("hb");
        assert_eq!(unmatched_return_positions(&s, 'h'), vec![0]);
        assert_eq!(unmatched_return_positions(&s, 'b'), vec![1]);
        // "agh": the g..h pair is matched, only a is pending
        let s = tag("agh");
        assert_eq!(unmatched_call_positions(&s, 'g'), Vec::<usize>::new());
        assert_eq!(unmatched_call_positions(&s, 'a'), vec![0]);
    }

    #[test]
    fn depth_measurement() {
        assert_eq!(nesting_depth(&tag("agcdcdhbcd")), 2);
        assert_eq!(nesting_depth(&tag("cd")), 0);
        assert_eq!(nesting_depth(&tag("aaabbb")), 3);
    }
}
