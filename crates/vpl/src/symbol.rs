//! Terminal symbols and their call/plain/return kinds (paper §3.2).

use std::fmt;

/// The three kinds of terminals of a visibly pushdown alphabet.
///
/// The stack action of a VPA is fully determined by the kind of the symbol read:
/// a call symbol pushes, a return symbol pops and a plain symbol leaves the stack
/// untouched (paper §3.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// A call symbol `‹a` (pushes onto the stack).
    Call,
    /// A plain (internal) symbol `c` (no stack action).
    Plain,
    /// A return symbol `b›` (pops from the stack).
    Return,
}

impl Kind {
    /// Returns `true` for [`Kind::Call`].
    #[must_use]
    pub fn is_call(self) -> bool {
        self == Kind::Call
    }

    /// Returns `true` for [`Kind::Plain`].
    #[must_use]
    pub fn is_plain(self) -> bool {
        self == Kind::Plain
    }

    /// Returns `true` for [`Kind::Return`].
    #[must_use]
    pub fn is_return(self) -> bool {
        self == Kind::Return
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Call => write!(f, "call"),
            Kind::Plain => write!(f, "plain"),
            Kind::Return => write!(f, "return"),
        }
    }
}

/// A character together with the kind assigned to it by a tagging function.
///
/// Displayed as `‹a` for calls, `a›` for returns and `a` for plain characters,
/// mirroring the paper's notation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaggedChar {
    /// The underlying (untagged) character.
    pub ch: char,
    /// The kind assigned by the tagging function.
    pub kind: Kind,
}

impl TaggedChar {
    /// A call symbol `‹ch`.
    #[must_use]
    pub fn call(ch: char) -> Self {
        TaggedChar { ch, kind: Kind::Call }
    }

    /// A plain symbol `ch`.
    #[must_use]
    pub fn plain(ch: char) -> Self {
        TaggedChar { ch, kind: Kind::Plain }
    }

    /// A return symbol `ch›`.
    #[must_use]
    pub fn ret(ch: char) -> Self {
        TaggedChar { ch, kind: Kind::Return }
    }
}

impl fmt::Display for TaggedChar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            Kind::Call => write!(f, "‹{}", self.ch),
            Kind::Plain => write!(f, "{}", self.ch),
            Kind::Return => write!(f, "{}›", self.ch),
        }
    }
}

/// Renders a tagged string using the paper's `‹a … b›` notation.
#[must_use]
pub fn display_tagged(s: &[TaggedChar]) -> String {
    s.iter().map(ToString::to_string).collect()
}

/// Strips the tags from a tagged string, recovering the raw character string.
#[must_use]
pub fn untag(s: &[TaggedChar]) -> String {
    s.iter().map(|t| t.ch).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(Kind::Call.is_call());
        assert!(!Kind::Call.is_plain());
        assert!(Kind::Plain.is_plain());
        assert!(Kind::Return.is_return());
        assert!(!Kind::Return.is_call());
    }

    #[test]
    fn kind_display() {
        assert_eq!(Kind::Call.to_string(), "call");
        assert_eq!(Kind::Plain.to_string(), "plain");
        assert_eq!(Kind::Return.to_string(), "return");
    }

    #[test]
    fn tagged_char_constructors_and_display() {
        assert_eq!(TaggedChar::call('a').to_string(), "‹a");
        assert_eq!(TaggedChar::ret('b').to_string(), "b›");
        assert_eq!(TaggedChar::plain('c').to_string(), "c");
    }

    #[test]
    fn display_and_untag_roundtrip() {
        let s = vec![TaggedChar::call('a'), TaggedChar::plain('c'), TaggedChar::ret('b')];
        assert_eq!(display_tagged(&s), "‹acb›");
        assert_eq!(untag(&s), "acb");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [TaggedChar::ret('b'), TaggedChar::call('a'), TaggedChar::plain('a')];
        v.sort();
        assert_eq!(v[0].ch, 'a');
    }
}
