//! Well-matched visibly pushdown grammars (paper Definition 3.1).
//!
//! Every production rule has one of the three shapes
//!
//! * `L → ε`
//! * `L → c L₁` with `c` a plain symbol (a *linear rule*),
//! * `L → ‹a L₁ b› L₂` with `‹a` a call symbol and `b›` a return symbol
//!   (a *matching rule*),
//!
//! which guarantees that every derived string is well matched.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use crate::error::VplError;
use crate::nested::matching_positions;
use crate::symbol::Kind;
use crate::tagging::Tagging;

/// Identifier of a nonterminal inside a [`Vpg`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NonterminalId(pub usize);

impl fmt::Display for NonterminalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Right-hand side of a well-matched VPG rule.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleRhs {
    /// `L → ε`
    Empty,
    /// `L → c L₁` where `c` is a plain symbol.
    Linear {
        /// The plain terminal.
        plain: char,
        /// The continuation nonterminal `L₁`.
        next: NonterminalId,
    },
    /// `L → ‹a L₁ b› L₂`.
    Match {
        /// The call terminal `‹a`.
        call: char,
        /// The nonterminal `L₁` generating the nested body.
        inner: NonterminalId,
        /// The return terminal `b›`.
        ret: char,
        /// The continuation nonterminal `L₂`.
        next: NonterminalId,
    },
}

/// A validated, immutable well-matched VPG.
///
/// Construct one through [`VpgBuilder`]. The grammar owns its [`Tagging`]; linear
/// rules may only use plain characters and matching rules may only use call/return
/// characters of that tagging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vpg {
    names: Vec<String>,
    rules: Vec<Vec<RuleRhs>>,
    start: NonterminalId,
    tagging: Tagging,
}

/// Incremental builder for [`Vpg`] values.
///
/// See the crate-level example for typical usage.
#[derive(Clone, Debug)]
pub struct VpgBuilder {
    names: Vec<String>,
    rules: Vec<Vec<RuleRhs>>,
    tagging: Tagging,
}

impl VpgBuilder {
    /// Creates a builder for a grammar over the given tagging.
    #[must_use]
    pub fn new(tagging: Tagging) -> Self {
        VpgBuilder { names: Vec::new(), rules: Vec::new(), tagging }
    }

    /// Declares (or looks up) a nonterminal by name.
    pub fn nonterminal(&mut self, name: &str) -> NonterminalId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return NonterminalId(i);
        }
        self.names.push(name.to_owned());
        self.rules.push(Vec::new());
        NonterminalId(self.names.len() - 1)
    }

    /// Adds the rule `lhs → ε`.
    pub fn empty_rule(&mut self, lhs: NonterminalId) -> &mut Self {
        self.push(lhs, RuleRhs::Empty);
        self
    }

    /// Adds the linear rule `lhs → plain next`.
    pub fn linear_rule(
        &mut self,
        lhs: NonterminalId,
        plain: char,
        next: NonterminalId,
    ) -> &mut Self {
        self.push(lhs, RuleRhs::Linear { plain, next });
        self
    }

    /// Adds the matching rule `lhs → ‹call inner ret› next`.
    pub fn match_rule(
        &mut self,
        lhs: NonterminalId,
        call: char,
        inner: NonterminalId,
        ret: char,
        next: NonterminalId,
    ) -> &mut Self {
        self.push(lhs, RuleRhs::Match { call, inner, ret, next });
        self
    }

    fn push(&mut self, lhs: NonterminalId, rhs: RuleRhs) {
        if !self.rules[lhs.0].contains(&rhs) {
            self.rules[lhs.0].push(rhs);
        }
    }

    /// Finishes the grammar with the given start nonterminal.
    ///
    /// # Errors
    ///
    /// Returns an error if a rule refers to an undeclared nonterminal, uses a
    /// terminal of the wrong kind, or if the grammar is empty.
    pub fn build(self, start: NonterminalId) -> Result<Vpg, VplError> {
        if self.names.is_empty() {
            return Err(VplError::EmptyGrammar);
        }
        if start.0 >= self.names.len() {
            return Err(VplError::UnknownNonterminal { index: start.0 });
        }
        let n = self.names.len();
        for alts in &self.rules {
            for rhs in alts {
                match *rhs {
                    RuleRhs::Empty => {}
                    RuleRhs::Linear { plain, next } => {
                        if next.0 >= n {
                            return Err(VplError::UnknownNonterminal { index: next.0 });
                        }
                        if self.tagging.kind(plain) != Kind::Plain {
                            return Err(VplError::InvalidRuleKind {
                                rule: format!("L -> {plain} L1 (terminal is not plain)"),
                            });
                        }
                    }
                    RuleRhs::Match { call, inner, ret, next } => {
                        if inner.0 >= n || next.0 >= n {
                            return Err(VplError::UnknownNonterminal {
                                index: inner.0.max(next.0),
                            });
                        }
                        if self.tagging.kind(call) != Kind::Call {
                            return Err(VplError::InvalidRuleKind {
                                rule: format!("L -> <{call} L1 {ret}> L2 (call terminal is not a call symbol)"),
                            });
                        }
                        if self.tagging.kind(ret) != Kind::Return {
                            return Err(VplError::InvalidRuleKind {
                                rule: format!("L -> <{call} L1 {ret}> L2 (return terminal is not a return symbol)"),
                            });
                        }
                    }
                }
            }
        }
        Ok(Vpg { names: self.names, rules: self.rules, start, tagging: self.tagging })
    }
}

impl Vpg {
    /// The grammar's tagging function.
    #[must_use]
    pub fn tagging(&self) -> &Tagging {
        &self.tagging
    }

    /// The start nonterminal.
    #[must_use]
    pub fn start(&self) -> NonterminalId {
        self.start
    }

    /// Number of nonterminals.
    #[must_use]
    pub fn nonterminal_count(&self) -> usize {
        self.names.len()
    }

    /// Total number of rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }

    /// The name of a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `nt` does not belong to this grammar.
    #[must_use]
    pub fn name(&self, nt: NonterminalId) -> &str {
        &self.names[nt.0]
    }

    /// The alternatives of a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `nt` does not belong to this grammar.
    #[must_use]
    pub fn alternatives(&self, nt: NonterminalId) -> &[RuleRhs] {
        &self.rules[nt.0]
    }

    /// Iterates over `(lhs, rhs)` for every rule.
    pub fn rules(&self) -> impl Iterator<Item = (NonterminalId, RuleRhs)> + '_ {
        self.rules
            .iter()
            .enumerate()
            .flat_map(|(i, alts)| alts.iter().map(move |&r| (NonterminalId(i), r)))
    }

    /// The stable index of the rule `lhs → rhs` in `0..rule_count()`, or `None`
    /// if the grammar has no such rule. Indices follow [`Vpg::rules`] order
    /// (nonterminal id, then alternative position), so they are usable as keys
    /// of rule-coverage bitmaps.
    #[must_use]
    pub fn rule_id(&self, lhs: NonterminalId, rhs: &RuleRhs) -> Option<usize> {
        let offset: usize = self.rules.get(..lhs.0)?.iter().map(Vec::len).sum();
        let pos = self.rules.get(lhs.0)?.iter().position(|r| r == rhs)?;
        Some(offset + pos)
    }

    /// Returns `true` if the grammar generates `s`.
    ///
    /// Recognition first checks well-matchedness under the grammar's tagging and
    /// then runs a memoized derivation check; the matching positions of the tagged
    /// string make each nested span unambiguous.
    #[must_use]
    pub fn accepts(&self, s: &str) -> bool {
        let tagged = self.tagging.tag(s);
        let Some(matches) = matching_positions(&tagged) else {
            return false;
        };
        let chars: Vec<char> = s.chars().collect();
        let mut memo: HashMap<(usize, usize, usize), bool> = HashMap::new();
        self.derives(self.start, 0, chars.len(), &chars, &matches, &mut memo)
    }

    fn derives(
        &self,
        nt: NonterminalId,
        i: usize,
        j: usize,
        s: &[char],
        matches: &[Option<usize>],
        memo: &mut HashMap<(usize, usize, usize), bool>,
    ) -> bool {
        debug_assert!(i <= j);
        if let Some(&v) = memo.get(&(nt.0, i, j)) {
            return v;
        }
        // Insert a provisional `false` to cut (impossible) cycles defensively.
        memo.insert((nt.0, i, j), false);
        let mut result = false;
        for rhs in &self.rules[nt.0] {
            match *rhs {
                RuleRhs::Empty => {
                    if i == j {
                        result = true;
                    }
                }
                RuleRhs::Linear { plain, next } => {
                    if i < j
                        && s[i] == plain
                        && self.tagging.kind(s[i]) == Kind::Plain
                        && self.derives(next, i + 1, j, s, matches, memo)
                    {
                        result = true;
                    }
                }
                RuleRhs::Match { call, inner, ret, next } => {
                    if i < j && s[i] == call && self.tagging.kind(s[i]) == Kind::Call {
                        if let Some(m) = matches[i] {
                            if m < j
                                && s[m] == ret
                                && self.derives(inner, i + 1, m, s, matches, memo)
                                && self.derives(next, m + 1, j, s, matches, memo)
                            {
                                result = true;
                            }
                        }
                    }
                }
            }
            if result {
                break;
            }
        }
        memo.insert((nt.0, i, j), result);
        result
    }

    /// Returns `true` if the nonterminal has the rule `nt → ε`.
    ///
    /// In a well-matched VPG of Definition 3.1 the linear and matching rule shapes
    /// always produce at least one terminal, so `nt ⇒* ε` holds **iff** the empty
    /// rule is present — direct-rule nullability is full nullability. Derivative
    /// recognizers rely on this to detect completed nesting levels.
    ///
    /// # Panics
    ///
    /// Panics if `nt` does not belong to this grammar.
    #[must_use]
    pub fn has_empty_rule(&self, nt: NonterminalId) -> bool {
        self.rules[nt.0].contains(&RuleRhs::Empty)
    }

    /// Nullability of every nonterminal, indexed by [`NonterminalId`]: `true` iff
    /// the nonterminal derives the empty string (see [`Vpg::has_empty_rule`]).
    #[must_use]
    pub fn nullables(&self) -> Vec<bool> {
        (0..self.names.len()).map(|i| self.has_empty_rule(NonterminalId(i))).collect()
    }

    /// Shortest derivable length for every nonterminal, or `None` for unproductive
    /// nonterminals.
    #[must_use]
    pub fn min_lengths(&self) -> Vec<Option<usize>> {
        let n = self.names.len();
        let mut min: Vec<Option<usize>> = vec![None; n];
        loop {
            let mut changed = false;
            for (i, alts) in self.rules.iter().enumerate() {
                for rhs in alts {
                    let candidate = match *rhs {
                        RuleRhs::Empty => Some(0),
                        RuleRhs::Linear { next, .. } => min[next.0].map(|m| m + 1),
                        RuleRhs::Match { inner, next, .. } => match (min[inner.0], min[next.0]) {
                            (Some(a), Some(b)) => Some(a + b + 2),
                            _ => None,
                        },
                    };
                    if let Some(c) = candidate {
                        if min[i].is_none_or(|cur| c < cur) {
                            min[i] = Some(c);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return min;
            }
        }
    }

    /// Enumerates every generated string of length at most `max_len`, in sorted
    /// order. Intended for tests and exhaustive-equivalence checks on small bounds.
    #[must_use]
    pub fn enumerate(&self, max_len: usize) -> Vec<String> {
        let n = self.names.len();
        let mut langs: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        loop {
            let mut changed = false;
            for (i, alts) in self.rules.iter().enumerate() {
                let mut additions: Vec<String> = Vec::new();
                for rhs in alts {
                    match *rhs {
                        RuleRhs::Empty => additions.push(String::new()),
                        RuleRhs::Linear { plain, next } => {
                            for t in &langs[next.0] {
                                if t.chars().count() < max_len {
                                    additions.push(format!("{plain}{t}"));
                                }
                            }
                        }
                        RuleRhs::Match { call, inner, ret, next } => {
                            for t1 in &langs[inner.0] {
                                for t2 in &langs[next.0] {
                                    if t1.chars().count() + t2.chars().count() + 2 <= max_len {
                                        additions.push(format!("{call}{t1}{ret}{t2}"));
                                    }
                                }
                            }
                        }
                    }
                }
                for a in additions {
                    if langs[i].insert(a) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        langs[self.start.0].iter().cloned().collect()
    }

    /// The set of terminals occurring in the grammar's rules.
    #[must_use]
    pub fn terminals(&self) -> BTreeSet<char> {
        let mut set = BTreeSet::new();
        for (_, rhs) in self.rules() {
            match rhs {
                RuleRhs::Empty => {}
                RuleRhs::Linear { plain, .. } => {
                    set.insert(plain);
                }
                RuleRhs::Match { call, ret, .. } => {
                    set.insert(call);
                    set.insert(ret);
                }
            }
        }
        set
    }

    /// Returns a structurally identical grammar with unreachable and unproductive
    /// nonterminals removed (the start nonterminal is always kept).
    #[must_use]
    pub fn trimmed(&self) -> Vpg {
        let min = self.min_lengths();
        // Reachability from the start through productive rules only.
        let mut reachable: HashSet<usize> = HashSet::new();
        let mut stack = vec![self.start.0];
        while let Some(i) = stack.pop() {
            if !reachable.insert(i) {
                continue;
            }
            for rhs in &self.rules[i] {
                match *rhs {
                    RuleRhs::Empty => {}
                    RuleRhs::Linear { next, .. } => stack.push(next.0),
                    RuleRhs::Match { inner, next, .. } => {
                        stack.push(inner.0);
                        stack.push(next.0);
                    }
                }
            }
        }
        let keep: Vec<usize> = (0..self.names.len())
            .filter(|&i| i == self.start.0 || (reachable.contains(&i) && min[i].is_some()))
            .collect();
        let remap: HashMap<usize, usize> =
            keep.iter().enumerate().map(|(new, &old)| (old, new)).collect();
        let mut names = Vec::with_capacity(keep.len());
        let mut rules = Vec::with_capacity(keep.len());
        for &old in &keep {
            names.push(self.names[old].clone());
            let alts: Vec<RuleRhs> = self.rules[old]
                .iter()
                .filter_map(|rhs| match *rhs {
                    RuleRhs::Empty => Some(RuleRhs::Empty),
                    RuleRhs::Linear { plain, next } => remap
                        .get(&next.0)
                        .map(|&n| RuleRhs::Linear { plain, next: NonterminalId(n) }),
                    RuleRhs::Match { call, inner, ret, next } => {
                        match (remap.get(&inner.0), remap.get(&next.0)) {
                            (Some(&a), Some(&b)) => Some(RuleRhs::Match {
                                call,
                                inner: NonterminalId(a),
                                ret,
                                next: NonterminalId(b),
                            }),
                            _ => None,
                        }
                    }
                })
                .collect();
            rules.push(alts);
        }
        Vpg {
            names,
            rules,
            start: NonterminalId(remap[&self.start.0]),
            tagging: self.tagging.clone(),
        }
    }
}

impl fmt::Display for Vpg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, alts) in self.rules.iter().enumerate() {
            if alts.is_empty() {
                continue;
            }
            write!(
                f,
                "{}{} →",
                self.names[i],
                if NonterminalId(i) == self.start { "*" } else { "" }
            )?;
            for (k, rhs) in alts.iter().enumerate() {
                if k > 0 {
                    write!(f, " |")?;
                }
                match *rhs {
                    RuleRhs::Empty => write!(f, " ε")?,
                    RuleRhs::Linear { plain, next } => {
                        write!(f, " {plain} {}", self.names[next.0])?;
                    }
                    RuleRhs::Match { call, inner, ret, next } => {
                        write!(
                            f,
                            " ‹{call} {} {ret}› {}",
                            self.names[inner.0], self.names[next.0]
                        )?;
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Builds the paper's Figure 1 running-example grammar:
/// `L → ‹a A b› L | c B | ε`, `A → ‹g L h› E`, `B → d L`, `E → ε`.
///
/// # Panics
///
/// Never panics; the grammar is statically well formed.
#[must_use]
pub fn figure1_grammar() -> Vpg {
    let tagging = Tagging::from_pairs([('a', 'b'), ('g', 'h')]).expect("disjoint pairs");
    let mut b = VpgBuilder::new(tagging);
    let l = b.nonterminal("L");
    let a = b.nonterminal("A");
    let bb = b.nonterminal("B");
    let e = b.nonterminal("E");
    b.match_rule(l, 'a', a, 'b', l);
    b.linear_rule(l, 'c', bb);
    b.empty_rule(l);
    b.match_rule(a, 'g', l, 'h', e);
    b.linear_rule(bb, 'd', l);
    b.empty_rule(e);
    b.build(l).expect("figure 1 grammar is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_accepts_seed_string() {
        let g = figure1_grammar();
        assert!(g.accepts("agcdcdhbcd"));
        assert!(g.accepts(""));
        assert!(g.accepts("cd"));
        assert!(g.accepts("aghb"));
        assert!(g.accepts("agagcdhbhbcd"));
    }

    #[test]
    fn figure1_rejects_invalid_strings() {
        let g = figure1_grammar();
        assert!(!g.accepts("a"));
        assert!(!g.accepts("ab")); // A has no empty rule: ‹a must contain g..h
        assert!(!g.accepts("ag hb"));
        assert!(!g.accepts("c"));
        assert!(!g.accepts("agcdcdhbx"));
        assert!(!g.accepts("ba"));
    }

    #[test]
    fn pumping_the_seed_string() {
        // (ag)^k cdcd (hb)^k cd ∈ L for k ≥ 1 (paper §4.3 example).
        let g = figure1_grammar();
        for k in 1..5 {
            let s = format!("{}cdcd{}cd", "ag".repeat(k), "hb".repeat(k));
            assert!(g.accepts(&s), "k = {k}");
        }
        // Unbalanced pumping must be rejected.
        assert!(!g.accepts(&format!("{}cdcd{}cd", "ag".repeat(2), "hb".repeat(3))));
    }

    #[test]
    fn builder_validates_kinds() {
        let tagging = Tagging::from_pairs([('a', 'b')]).unwrap();
        let mut b = VpgBuilder::new(tagging.clone());
        let l = b.nonterminal("L");
        b.linear_rule(l, 'a', l); // 'a' is a call symbol: invalid linear rule
        assert!(matches!(b.build(l), Err(VplError::InvalidRuleKind { .. })));

        let mut b = VpgBuilder::new(tagging);
        let l = b.nonterminal("L");
        b.match_rule(l, 'b', l, 'a', l); // swapped kinds
        assert!(b.build(l).is_err());
    }

    #[test]
    fn empty_builder_is_an_error() {
        let b = VpgBuilder::new(Tagging::new());
        assert!(matches!(b.build(NonterminalId(0)), Err(VplError::EmptyGrammar)));
    }

    #[test]
    fn min_lengths_and_trim() {
        let g = figure1_grammar();
        let min = g.min_lengths();
        assert_eq!(min[g.start().0], Some(0));
        // A requires ‹g L h›, so its minimum is 2.
        let a = NonterminalId(1);
        assert_eq!(min[a.0], Some(2));
        let t = g.trimmed();
        assert_eq!(t.nonterminal_count(), g.nonterminal_count());
        assert!(t.accepts("agcdcdhbcd"));
    }

    #[test]
    fn trimming_removes_unproductive_nonterminals() {
        let tagging = Tagging::from_pairs([('a', 'b')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let l = b.nonterminal("L");
        let dead = b.nonterminal("Dead");
        b.empty_rule(l);
        b.linear_rule(l, 'x', l);
        // Dead only refers to itself through a linear rule: unproductive.
        b.linear_rule(dead, 'y', dead);
        b.linear_rule(l, 'z', dead);
        let g = b.build(l).unwrap();
        let t = g.trimmed();
        assert_eq!(t.nonterminal_count(), 1);
        assert!(t.accepts("xx"));
        assert!(!t.accepts("zy"));
    }

    #[test]
    fn enumeration_matches_recognizer() {
        let g = figure1_grammar();
        let words = g.enumerate(8);
        assert!(words.contains(&String::new()));
        assert!(words.contains(&"cd".to_string()));
        assert!(words.contains(&"aghb".to_string()));
        for w in &words {
            assert!(g.accepts(w), "enumerated word {w:?} must be accepted");
        }
        // Everything of length ≤ 4 over the terminal alphabet that the recognizer
        // accepts must be enumerated.
        let terminals: Vec<char> = g.terminals().into_iter().collect();
        for w in crate::words::all_strings(&terminals, 4) {
            let in_enum = words.contains(&w);
            assert_eq!(g.accepts(&w), in_enum, "mismatch on {w:?}");
        }
    }

    #[test]
    fn display_lists_all_nonterminals() {
        let g = figure1_grammar();
        let text = g.to_string();
        assert!(text.contains("L*"));
        assert!(text.contains('ε'));
        assert!(text.contains("‹a"));
        assert!(text.contains("b›"));
    }

    #[test]
    fn nullability_matches_empty_rules() {
        let g = figure1_grammar();
        let nullable = g.nullables();
        // L and E have ε-rules; A and B do not.
        assert_eq!(nullable, vec![true, false, false, true]);
        let min = g.min_lengths();
        for (i, &is_nullable) in nullable.iter().enumerate() {
            assert_eq!(g.has_empty_rule(NonterminalId(i)), is_nullable);
            // Direct-rule nullability coincides with full nullability: the minimum
            // derivable length is zero exactly for the ε-rule nonterminals.
            assert_eq!(min[i] == Some(0), is_nullable);
        }
    }

    #[test]
    fn rule_ids_are_a_bijection_onto_rule_indices() {
        let g = figure1_grammar();
        let mut seen = std::collections::BTreeSet::new();
        for (i, (lhs, rhs)) in g.rules().enumerate() {
            let id = g.rule_id(lhs, &rhs).expect("every enumerated rule has an id");
            assert_eq!(id, i, "rule ids follow Vpg::rules order");
            assert!(seen.insert(id));
        }
        assert_eq!(seen.len(), g.rule_count());
        // Absent rules and out-of-range nonterminals have no id.
        assert_eq!(g.rule_id(NonterminalId(1), &RuleRhs::Empty), None);
        assert_eq!(g.rule_id(NonterminalId(99), &RuleRhs::Empty), None);
    }

    #[test]
    fn rules_iterator_counts() {
        let g = figure1_grammar();
        assert_eq!(g.rules().count(), g.rule_count());
        assert_eq!(g.rule_count(), 6);
        assert_eq!(g.terminals().len(), 6);
    }
}
