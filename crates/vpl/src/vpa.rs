//! Deterministic visibly pushdown automata (paper §3.3).
//!
//! A [`Vpa`] is a partial deterministic VPA over a [`Tagging`]: reading a call
//! symbol pushes a stack symbol, a return symbol pops one and a plain symbol leaves
//! the stack untouched. Missing transitions reject. Acceptance requires ending in an
//! accepting state **with an empty stack** (the well-matched acceptance condition
//! used by the paper's learner).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::VplError;
use crate::symbol::{Kind, TaggedChar};
use crate::tagging::Tagging;

/// Identifier of a VPA state.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a stack symbol (other than the implicit bottom symbol `⊥`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StackSymId(pub usize);

/// A run configuration: current state plus the stack (top last, bottom implicit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    /// The current state.
    pub state: StateId,
    /// Pushed stack symbols, bottom first; the `⊥` bottom marker is implicit.
    pub stack: Vec<StackSymId>,
}

/// The outcome of tracing a VPA over a tagged string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Configuration after each prefix: `configs[i]` is the configuration after
    /// reading `i` symbols. Always contains at least the initial configuration.
    pub configs: Vec<Configuration>,
    /// If the automaton got stuck (missing transition), the index of the symbol it
    /// could not read.
    pub stuck_at: Option<usize>,
}

impl Trace {
    /// `true` if the whole input was consumed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.stuck_at.is_none()
    }

    /// The final configuration reached (the last one before getting stuck).
    ///
    /// # Panics
    ///
    /// Never panics: `configs` always holds the initial configuration.
    #[must_use]
    pub fn last(&self) -> &Configuration {
        self.configs.last().expect("trace always has the initial configuration")
    }
}

/// A deterministic (partial) visibly pushdown automaton.
///
/// Transition tables are ordered maps, so the transition iterators — and
/// everything downstream of their order, like the rule order of
/// [`crate::vpa_to_vpg()`] and the draws of samplers over the extracted
/// grammar — are stable across processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vpa {
    tagging: Tagging,
    n_states: usize,
    n_stack_syms: usize,
    initial: StateId,
    accepting: BTreeSet<StateId>,
    call_tr: BTreeMap<(StateId, char), (StateId, StackSymId)>,
    ret_tr: BTreeMap<(StateId, char, StackSymId), StateId>,
    /// Transitions taken when a return symbol is read with an empty stack
    /// (the paper allows them; well-matched languages never exercise them).
    ret_bottom_tr: BTreeMap<(StateId, char), StateId>,
    plain_tr: BTreeMap<(StateId, char), StateId>,
}

impl Vpa {
    /// The automaton's tagging function.
    #[must_use]
    pub fn tagging(&self) -> &Tagging {
        &self.tagging
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Number of (non-bottom) stack symbols.
    #[must_use]
    pub fn stack_symbol_count(&self) -> usize {
        self.n_stack_syms
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The accepting states.
    #[must_use]
    pub fn accepting(&self) -> &BTreeSet<StateId> {
        &self.accepting
    }

    /// Returns `true` if `state` is accepting.
    #[must_use]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting.contains(&state)
    }

    /// Iterates over all call transitions `(from, call) → (to, pushed)`.
    pub fn call_transitions(
        &self,
    ) -> impl Iterator<Item = (StateId, char, StateId, StackSymId)> + '_ {
        self.call_tr.iter().map(|(&(q, c), &(q2, g))| (q, c, q2, g))
    }

    /// Iterates over all return transitions `(from, ret, popped) → to`.
    pub fn return_transitions(
        &self,
    ) -> impl Iterator<Item = (StateId, char, StackSymId, StateId)> + '_ {
        self.ret_tr.iter().map(|(&(q, c, g), &q2)| (q, c, g, q2))
    }

    /// Iterates over all plain transitions `(from, plain) → to`.
    pub fn plain_transitions(&self) -> impl Iterator<Item = (StateId, char, StateId)> + '_ {
        self.plain_tr.iter().map(|(&(q, c), &q2)| (q, c, q2))
    }

    /// Iterates over all return-on-empty-stack transitions `(from, ret) → to`
    /// (the paper allows them; well-matched languages never exercise them).
    pub fn bottom_return_transitions(&self) -> impl Iterator<Item = (StateId, char, StateId)> + '_ {
        self.ret_bottom_tr.iter().map(|(&(q, c), &q2)| (q, c, q2))
    }

    /// Performs one configuration step (paper §3.3). Returns `None` when the
    /// required transition is missing.
    #[must_use]
    pub fn step(&self, config: &Configuration, sym: TaggedChar) -> Option<Configuration> {
        match sym.kind {
            Kind::Call => {
                let &(q2, g) = self.call_tr.get(&(config.state, sym.ch))?;
                let mut stack = config.stack.clone();
                stack.push(g);
                Some(Configuration { state: q2, stack })
            }
            Kind::Return => {
                if let Some(&top) = config.stack.last() {
                    let &q2 = self.ret_tr.get(&(config.state, sym.ch, top))?;
                    let mut stack = config.stack.clone();
                    stack.pop();
                    Some(Configuration { state: q2, stack })
                } else {
                    let &q2 = self.ret_bottom_tr.get(&(config.state, sym.ch))?;
                    Some(Configuration { state: q2, stack: Vec::new() })
                }
            }
            Kind::Plain => {
                let &q2 = self.plain_tr.get(&(config.state, sym.ch))?;
                Some(Configuration { state: q2, stack: config.stack.clone() })
            }
        }
    }

    /// Runs the automaton over a pre-tagged string and records every configuration.
    #[must_use]
    pub fn trace_tagged(&self, input: &[TaggedChar]) -> Trace {
        let mut configs = vec![Configuration { state: self.initial, stack: Vec::new() }];
        for (i, &sym) in input.iter().enumerate() {
            match self.step(configs.last().expect("nonempty"), sym) {
                Some(next) => configs.push(next),
                None => return Trace { configs, stuck_at: Some(i) },
            }
        }
        Trace { configs, stuck_at: None }
    }

    /// Runs the automaton on a raw string, tagging it with the automaton's tagging.
    #[must_use]
    pub fn trace(&self, input: &str) -> Trace {
        self.trace_tagged(&self.tagging.tag(input))
    }

    /// Returns `true` if the automaton accepts the (pre-tagged) string: the run
    /// completes and ends in an accepting state with an empty stack.
    #[must_use]
    pub fn accepts_tagged(&self, input: &[TaggedChar]) -> bool {
        let trace = self.trace_tagged(input);
        if !trace.completed() {
            return false;
        }
        let last = trace.last();
        last.stack.is_empty() && self.is_accepting(last.state)
    }

    /// Returns `true` if the automaton accepts the raw string under its own tagging.
    #[must_use]
    pub fn accepts(&self, input: &str) -> bool {
        self.accepts_tagged(&self.tagging.tag(input))
    }
}

/// Builder for [`Vpa`] values.
///
/// # Example
///
/// ```
/// use vstar_vpl::{Tagging, VpaBuilder};
///
/// // The Dyck language over a single pair of brackets with plain 'x' bodies.
/// let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
/// let mut b = VpaBuilder::new(tagging);
/// let q0 = b.add_state();
/// let gamma = b.add_stack_symbol();
/// b.set_initial(q0);
/// b.add_accepting(q0);
/// b.call(q0, '(', q0, gamma).unwrap();
/// b.ret(q0, ')', gamma, q0).unwrap();
/// b.plain(q0, 'x', q0).unwrap();
/// let vpa = b.build().unwrap();
/// assert!(vpa.accepts("((x)x)"));
/// assert!(!vpa.accepts("((x)"));
/// ```
#[derive(Clone, Debug)]
pub struct VpaBuilder {
    tagging: Tagging,
    n_states: usize,
    n_stack_syms: usize,
    initial: Option<StateId>,
    accepting: BTreeSet<StateId>,
    call_tr: BTreeMap<(StateId, char), (StateId, StackSymId)>,
    ret_tr: BTreeMap<(StateId, char, StackSymId), StateId>,
    ret_bottom_tr: BTreeMap<(StateId, char), StateId>,
    plain_tr: BTreeMap<(StateId, char), StateId>,
}

impl VpaBuilder {
    /// Creates a builder over the given tagging.
    #[must_use]
    pub fn new(tagging: Tagging) -> Self {
        VpaBuilder {
            tagging,
            n_states: 0,
            n_stack_syms: 0,
            initial: None,
            accepting: BTreeSet::new(),
            call_tr: BTreeMap::new(),
            ret_tr: BTreeMap::new(),
            ret_bottom_tr: BTreeMap::new(),
            plain_tr: BTreeMap::new(),
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.n_states);
        self.n_states += 1;
        id
    }

    /// Adds `count` fresh states and returns them.
    pub fn add_states(&mut self, count: usize) -> Vec<StateId> {
        (0..count).map(|_| self.add_state()).collect()
    }

    /// Adds a fresh stack symbol.
    pub fn add_stack_symbol(&mut self) -> StackSymId {
        let id = StackSymId(self.n_stack_syms);
        self.n_stack_syms += 1;
        id
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) -> &mut Self {
        self.initial = Some(state);
        self
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, state: StateId) -> &mut Self {
        self.accepting.insert(state);
        self
    }

    fn check_state(&self, s: StateId) -> Result<(), VplError> {
        if s.0 >= self.n_states {
            return Err(VplError::UnknownState { index: s.0 });
        }
        Ok(())
    }

    /// Adds the call transition `(from, ‹call) → (to, push)`.
    ///
    /// # Errors
    ///
    /// Rejects unknown states, symbols that are not call symbols under the tagging,
    /// and conflicting (nondeterministic) transitions.
    pub fn call(
        &mut self,
        from: StateId,
        call: char,
        to: StateId,
        push: StackSymId,
    ) -> Result<&mut Self, VplError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if self.tagging.kind(call) != Kind::Call {
            return Err(VplError::InvalidTransitionKind { ch: call, table: "call" });
        }
        if push.0 >= self.n_stack_syms {
            return Err(VplError::UnknownState { index: push.0 });
        }
        if let Some(&existing) = self.call_tr.get(&(from, call)) {
            if existing != (to, push) {
                return Err(VplError::ConflictingTransition {
                    detail: format!("call transition from {from} on {call:?} already defined"),
                });
            }
        }
        self.call_tr.insert((from, call), (to, push));
        Ok(self)
    }

    /// Adds the return transition `(from, ret›, pop) → to`.
    ///
    /// # Errors
    ///
    /// Rejects unknown states, symbols that are not return symbols under the
    /// tagging, and conflicting transitions.
    pub fn ret(
        &mut self,
        from: StateId,
        ret: char,
        pop: StackSymId,
        to: StateId,
    ) -> Result<&mut Self, VplError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if self.tagging.kind(ret) != Kind::Return {
            return Err(VplError::InvalidTransitionKind { ch: ret, table: "return" });
        }
        if pop.0 >= self.n_stack_syms {
            return Err(VplError::UnknownState { index: pop.0 });
        }
        if let Some(&existing) = self.ret_tr.get(&(from, ret, pop)) {
            if existing != to {
                return Err(VplError::ConflictingTransition {
                    detail: format!("return transition from {from} on {ret:?} already defined"),
                });
            }
        }
        self.ret_tr.insert((from, ret, pop), to);
        Ok(self)
    }

    /// Adds a return transition taken on an empty stack.
    ///
    /// # Errors
    ///
    /// Rejects unknown states and symbols that are not return symbols.
    pub fn ret_on_empty(
        &mut self,
        from: StateId,
        ret: char,
        to: StateId,
    ) -> Result<&mut Self, VplError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if self.tagging.kind(ret) != Kind::Return {
            return Err(VplError::InvalidTransitionKind { ch: ret, table: "return" });
        }
        self.ret_bottom_tr.insert((from, ret), to);
        Ok(self)
    }

    /// Adds the plain transition `(from, plain) → to`.
    ///
    /// # Errors
    ///
    /// Rejects unknown states, symbols that are not plain, and conflicts.
    pub fn plain(
        &mut self,
        from: StateId,
        plain: char,
        to: StateId,
    ) -> Result<&mut Self, VplError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if self.tagging.kind(plain) != Kind::Plain {
            return Err(VplError::InvalidTransitionKind { ch: plain, table: "plain" });
        }
        if let Some(&existing) = self.plain_tr.get(&(from, plain)) {
            if existing != to {
                return Err(VplError::ConflictingTransition {
                    detail: format!("plain transition from {from} on {plain:?} already defined"),
                });
            }
        }
        self.plain_tr.insert((from, plain), to);
        Ok(self)
    }

    /// Finishes the automaton.
    ///
    /// # Errors
    ///
    /// Returns an error when no state was declared or the initial state is missing.
    pub fn build(self) -> Result<Vpa, VplError> {
        if self.n_states == 0 {
            return Err(VplError::EmptyGrammar);
        }
        let initial = self.initial.ok_or(VplError::UnknownState { index: usize::MAX })?;
        Ok(Vpa {
            tagging: self.tagging,
            n_states: self.n_states,
            n_stack_syms: self.n_stack_syms,
            initial,
            accepting: self.accepting,
            call_tr: self.call_tr,
            ret_tr: self.ret_tr,
            ret_bottom_tr: self.ret_bottom_tr,
            plain_tr: self.plain_tr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyck_vpa() -> Vpa {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let gamma = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.call(q0, '(', q0, gamma).unwrap();
        b.ret(q0, ')', gamma, q0).unwrap();
        b.plain(q0, 'x', q0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dyck_acceptance() {
        let vpa = dyck_vpa();
        assert!(vpa.accepts(""));
        assert!(vpa.accepts("x"));
        assert!(vpa.accepts("(x)"));
        assert!(vpa.accepts("((x)(x))x"));
        assert!(!vpa.accepts("("));
        assert!(!vpa.accepts(")"));
        assert!(!vpa.accepts("(x))"));
        assert!(!vpa.accepts("y"));
    }

    #[test]
    fn trace_records_configurations() {
        let vpa = dyck_vpa();
        let t = vpa.trace("(x)");
        assert!(t.completed());
        assert_eq!(t.configs.len(), 4);
        assert_eq!(t.configs[1].stack.len(), 1);
        assert_eq!(t.configs[3].stack.len(), 0);
        assert!(t.last().stack.is_empty());
    }

    #[test]
    fn trace_reports_stuck_position() {
        let vpa = dyck_vpa();
        let t = vpa.trace("(y)");
        assert_eq!(t.stuck_at, Some(1));
        assert_eq!(t.configs.len(), 2);
        assert!(!vpa.accepts("(y)"));
    }

    #[test]
    fn counting_vpa_distinguishes_depth() {
        // Language: { (^k x )^k | k ≥ 0 } with at most depth 2 states distinguishing
        // acceptance of the inner body.
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let g = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q1);
        b.call(q0, '(', q0, g).unwrap();
        b.plain(q0, 'x', q1).unwrap();
        b.ret(q1, ')', g, q1).unwrap();
        let vpa = b.build().unwrap();
        assert!(vpa.accepts("x"));
        assert!(vpa.accepts("(x)"));
        assert!(vpa.accepts("(((x)))"));
        assert!(!vpa.accepts("(x"));
        assert!(!vpa.accepts("(x))"));
        assert!(!vpa.accepts(""));
    }

    #[test]
    fn builder_rejects_wrong_kinds() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let g = b.add_stack_symbol();
        assert!(b.call(q0, 'x', q0, g).is_err());
        assert!(b.ret(q0, '(', g, q0).is_err());
        assert!(b.plain(q0, ')', q0).is_err());
    }

    #[test]
    fn builder_rejects_conflicts_and_unknowns() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let _g = b.add_stack_symbol();
        b.plain(q0, 'x', q0).unwrap();
        assert!(b.plain(q0, 'x', q1).is_err());
        assert!(b.plain(StateId(9), 'x', q0).is_err());
        assert!(b.call(q0, '(', q0, StackSymId(5)).is_err());
        // Re-adding the identical transition is fine.
        assert!(b.plain(q0, 'x', q0).is_ok());
    }

    #[test]
    fn build_requires_initial_state() {
        let tagging = Tagging::new();
        let mut b = VpaBuilder::new(tagging.clone());
        b.add_state();
        assert!(b.build().is_err());
        let b = VpaBuilder::new(tagging);
        assert!(b.build().is_err());
    }

    #[test]
    fn return_on_empty_stack() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q1);
        b.ret_on_empty(q0, ')', q1).unwrap();
        let vpa = b.build().unwrap();
        // ")" pops on the empty stack and reaches the accepting state with an
        // empty stack, so it is accepted under the paper's VPA semantics.
        assert!(vpa.accepts(")"));
        assert!(!vpa.accepts("))"));
        assert_eq!(vpa.bottom_return_transitions().collect::<Vec<_>>(), vec![(q0, ')', q1)]);
    }

    #[test]
    fn transition_iterators() {
        let vpa = dyck_vpa();
        assert_eq!(vpa.call_transitions().count(), 1);
        assert_eq!(vpa.return_transitions().count(), 1);
        assert_eq!(vpa.plain_transitions().count(), 1);
        assert_eq!(vpa.state_count(), 1);
        assert_eq!(vpa.stack_symbol_count(), 1);
        assert!(vpa.is_accepting(vpa.initial()));
    }
}
