//! Error type shared by the `vstar-vpl` crate.

use std::fmt;

/// Errors produced while constructing or validating VPL objects
/// (taggings, grammars, automata).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VplError {
    /// A character was used both as a call and as a return symbol, or appeared in
    /// two different call/return pairs (violates the Unique Pairing assumption).
    AmbiguousTagging {
        /// The offending character.
        ch: char,
    },
    /// A grammar rule used a terminal with the wrong kind (e.g. a call symbol in a
    /// linear rule `L → c L1`).
    InvalidRuleKind {
        /// Human-readable description of the offending rule.
        rule: String,
    },
    /// A grammar references a nonterminal that was never declared.
    UnknownNonterminal {
        /// Index of the offending nonterminal.
        index: usize,
    },
    /// A grammar has no nonterminals or no start symbol.
    EmptyGrammar,
    /// An automaton transition refers to a state that does not exist.
    UnknownState {
        /// Index of the offending state.
        index: usize,
    },
    /// An automaton transition uses a symbol of the wrong kind for its table
    /// (e.g. a plain symbol in the call-transition table).
    InvalidTransitionKind {
        /// The offending character.
        ch: char,
        /// Name of the transition table.
        table: &'static str,
    },
    /// A deterministic automaton was given two conflicting transitions.
    ConflictingTransition {
        /// Human-readable description of the conflict.
        detail: String,
    },
}

impl fmt::Display for VplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VplError::AmbiguousTagging { ch } => {
                write!(f, "character {ch:?} is tagged ambiguously (unique pairing violated)")
            }
            VplError::InvalidRuleKind { rule } => {
                write!(f, "grammar rule uses a terminal of the wrong kind: {rule}")
            }
            VplError::UnknownNonterminal { index } => {
                write!(f, "rule references unknown nonterminal #{index}")
            }
            VplError::EmptyGrammar => write!(f, "grammar has no nonterminals"),
            VplError::UnknownState { index } => {
                write!(f, "transition references unknown state #{index}")
            }
            VplError::InvalidTransitionKind { ch, table } => {
                write!(f, "symbol {ch:?} has the wrong kind for the {table} transition table")
            }
            VplError::ConflictingTransition { detail } => {
                write!(f, "conflicting deterministic transition: {detail}")
            }
        }
    }
}

impl std::error::Error for VplError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            VplError::AmbiguousTagging { ch: 'a' },
            VplError::InvalidRuleKind { rule: "L -> a L1".into() },
            VplError::UnknownNonterminal { index: 3 },
            VplError::EmptyGrammar,
            VplError::UnknownState { index: 7 },
            VplError::InvalidTransitionKind { ch: 'x', table: "call" },
            VplError::ConflictingTransition { detail: "q0 --a--> {q1, q2}".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("grammar"));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(VplError::EmptyGrammar);
        assert_eq!(e.to_string(), "grammar has no nonterminals");
    }
}
