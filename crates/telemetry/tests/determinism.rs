//! The determinism contract of the telemetry crate, property-tested: two
//! runs of the *same* instrumented workload emit byte-identical deterministic
//! facts — counters, span tree, histograms, and the JSONL journal — while the
//! wall-clock timings are free to differ.
//!
//! The workload is a small interpreter over a script of telemetry
//! operations, so proptest explores arbitrary interleavings of span
//! entries/exits (including nested same-name phases), counter bumps
//! (including zero deltas), histogram records and journal events. The
//! script is decoded from a flat vector of opcodes, which keeps the
//! strategy simple while still producing nested span structure.

use proptest::prelude::*;

/// One telemetry operation of the scripted workload.
#[derive(Clone, Debug)]
enum Op {
    /// Enter a span by name index and run a sub-script inside it.
    Span(usize, Vec<Op>),
    /// Bump a counter by a (possibly zero) delta.
    Counter(usize, u64),
    /// Record a histogram observation.
    Record(usize, u64),
    /// Emit a journal event with one field.
    Event(usize, u64),
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "alpha.copy"];
const MAX_DEPTH: usize = 3;

/// Decodes a flat opcode stream into a nested script. Each code selects an
/// operation kind, a name, and a payload; "open span" recurses (bounded
/// depth) and "close span" returns to the parent, so nesting emerges from
/// the flat vector deterministically.
fn decode(codes: &mut std::slice::Iter<'_, u64>, depth: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    while let Some(&code) = codes.next() {
        let name = (code >> 3) as usize % NAMES.len();
        let payload = code >> 5;
        match code & 0b111 {
            0 | 1 if depth < MAX_DEPTH => ops.push(Op::Span(name, decode(codes, depth + 1))),
            2 if depth > 0 => return ops,
            3 | 4 => ops.push(Op::Counter(name, payload % 1000)),
            5 | 6 => ops.push(Op::Record(name, payload)),
            _ => ops.push(Op::Event(name, payload % 1000)),
        }
    }
    ops
}

fn run_script(ops: &[Op]) {
    for op in ops {
        match op {
            Op::Span(n, body) => {
                let _guard = vstar_telemetry::span(NAMES[*n]);
                run_script(body);
            }
            Op::Counter(n, delta) => vstar_telemetry::counter(NAMES[*n], *delta),
            Op::Record(n, value) => vstar_telemetry::record(NAMES[*n], *value),
            Op::Event(n, value) => vstar_telemetry::event(NAMES[*n], &[("value", *value)]),
        }
    }
}

fn collect(ops: &[Op]) -> vstar_telemetry::TelemetryReport {
    let guard = vstar_telemetry::install();
    run_script(ops);
    guard.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two same-script runs produce byte-identical deterministic facts: the
    /// serialized facts document and every JSONL journal line agree exactly.
    #[test]
    fn same_workload_emits_byte_identical_deterministic_facts(
        codes in proptest::collection::vec(0u64..u64::MAX, 0..48)
    ) {
        let ops = decode(&mut codes.iter(), 0);
        let first = collect(&ops);
        let second = collect(&ops);
        let first_doc = serde_json::to_string(&first.facts).unwrap();
        let second_doc = serde_json::to_string(&second.facts).unwrap();
        prop_assert_eq!(first_doc, second_doc);
        prop_assert_eq!(first.facts.journal_lines(), second.facts.journal_lines());
        // The structured views agree too (PartialEq, not just serialization).
        prop_assert_eq!(&first.facts, &second.facts);
        // Timings are present for every span entered, but their values are
        // wall clock — only the deterministic *paths* must agree.
        let paths = |t: &vstar_telemetry::Timings| -> Vec<String> {
            t.spans.iter().map(|s| s.path.clone()).collect()
        };
        prop_assert_eq!(paths(&first.timings), paths(&second.timings));
    }

    /// Counter grand totals are the sum of every per-span attribution —
    /// whatever the nesting, nothing is lost or double counted.
    #[test]
    fn span_attribution_partitions_counter_totals(
        codes in proptest::collection::vec(0u64..u64::MAX, 0..48)
    ) {
        let ops = decode(&mut codes.iter(), 0);
        let report = collect(&ops);
        for (name, total) in &report.facts.counters {
            prop_assert_eq!(report.facts.root.subtree_counter(name), *total);
        }
    }
}
