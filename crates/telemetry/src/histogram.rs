//! Count-bucketed histograms over power-of-two buckets.
//!
//! Telemetry histograms record *counts* (characters per parse, evidence items
//! per round, …), so the bucket layout is the classic power-of-two scheme:
//! bucket 0 holds the value `0`, bucket `b ≥ 1` holds the values in
//! `[2^(b-1), 2^b - 1]`. Bucket indices are a pure function of the value, so
//! two runs that observe the same values produce byte-identical snapshots —
//! histograms are deterministic facts, never wall-clock measurements.

use serde::Serialize;

/// A count-bucketed histogram with power-of-two buckets.
///
/// Only non-empty buckets are materialized in [`Histogram::rows`]; an empty
/// histogram has no rows and reports `min`/`max` of zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts the recorded values with [`Histogram::bucket_index`] `i`.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// One non-empty histogram bucket: the closed value range `[lo, hi]` and how
/// many recorded values fell into it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub struct BucketRow {
    /// Smallest value of the bucket's range.
    pub lo: u64,
    /// Largest value of the bucket's range.
    pub hi: u64,
    /// Number of recorded values in `[lo, hi]`.
    pub count: u64,
}

/// Quantile digest of a histogram: the p50/p90/p99 estimates plus the exact
/// max, for one-line human-readable summaries.
///
/// Quantiles are bucket-resolution estimates (the upper bound of the bucket
/// holding the rank-⌈qN⌉ observation, clamped to the exact `max`), so they are
/// as deterministic as the histogram itself: same observations, same summary.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct QuantileSummary {
    /// Number of observations the summary digests.
    pub count: u64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// 90th-percentile estimate (bucket upper bound).
    pub p90: u64,
    /// 99th-percentile estimate (bucket upper bound).
    pub p99: u64,
    /// Exact largest observation (0 when empty).
    pub max: u64,
}

impl QuantileSummary {
    /// Digests `count`/`max` plus ascending non-empty `rows` (the
    /// [`Histogram::rows`] shape) into a summary. Usable on any snapshot that
    /// kept only the bucket rows, e.g. a serialized
    /// [`crate::NamedHistogram`].
    #[must_use]
    pub fn from_rows(count: u64, max: u64, rows: &[BucketRow]) -> Self {
        QuantileSummary {
            count,
            p50: quantile_from_rows(rows, count, max, 0.50),
            p90: quantile_from_rows(rows, count, max, 0.90),
            p99: quantile_from_rows(rows, count, max, 0.99),
            max,
        }
    }
}

/// The q-quantile estimate over ascending bucket rows: the upper bound of the
/// bucket containing the rank-⌈q·count⌉ observation, clamped to `max`.
fn quantile_from_rows(rows: &[BucketRow], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for row in rows {
        cumulative += row.count;
        if cumulative >= rank {
            // A non-empty bucket holds some observation ≤ max, so lo ≤ max and
            // the clamp below stays inside the bucket's range.
            return row.hi.min(max);
        }
    }
    max
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index of `value`: 0 for the value zero, otherwise the bit
    /// length of `value` (so bucket `b` spans `[2^(b-1), 2^b - 1]`).
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The closed value range `[lo, hi]` of bucket `index`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            1..=63 => (1u64 << (index - 1), (1u64 << index) - 1),
            _ => (1u64 << 63, u64::MAX),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The q-quantile estimate (`0.0 ≤ q ≤ 1.0`): the upper bound of the
    /// bucket containing the rank-⌈q·count⌉ observation, clamped to the exact
    /// [`Histogram::max`]. Returns 0 on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_rows(&self.rows(), self.count, self.max, q)
    }

    /// The p50/p90/p99 + max digest of this histogram (see
    /// [`QuantileSummary`]).
    #[must_use]
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary::from_rows(self.count, self.max, &self.rows())
    }

    /// The non-empty buckets in ascending value order.
    #[must_use]
    pub fn rows(&self) -> Vec<BucketRow> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(idx, &count)| {
                let (lo, hi) = Self::bucket_bounds(idx);
                BucketRow { lo, hi, count }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        assert_eq!(Histogram::bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Every value lands inside the bounds of its own bucket.
        for v in [0u64, 1, 2, 3, 4, 5, 100, 1023, 1024, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        let rows = h.rows();
        assert_eq!(
            rows,
            vec![
                BucketRow { lo: 0, hi: 0, count: 1 },
                BucketRow { lo: 1, hi: 1, count: 1 },
                BucketRow { lo: 2, hi: 3, count: 3 },
                BucketRow { lo: 8, hi: 15, count: 1 },
            ]
        );
    }

    #[test]
    fn zero_count_buckets_are_skipped() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1024);
        // The buckets between 1 and 1024 exist internally but are empty; the
        // snapshot must skip them.
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], BucketRow { lo: 1, hi: 1, count: 1 });
        assert_eq!(rows[1], BucketRow { lo: 1024, hi: 2047, count: 1 });
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.rows().is_empty());
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Rank 50 lands in bucket [32, 63]; ranks 90 and 99 in [64, 127],
        // whose upper bound clamps to the exact max.
        assert_eq!(h.quantile(0.50), 63);
        assert_eq!(h.quantile(0.90), 100);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(0.0), 1, "rank clamps up to the first observation");
        assert_eq!(h.quantile(1.0), 100);
        let s = h.summary();
        assert_eq!(s, QuantileSummary { count: 100, p50: 63, p90: 100, p99: 100, max: 100 });
        // The rows-based digest agrees with the histogram's own.
        assert_eq!(QuantileSummary::from_rows(h.count(), h.max(), &h.rows()), s);
    }

    #[test]
    fn quantiles_of_skewed_and_tiny_histograms() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.summary(), QuantileSummary::default());

        let mut one = Histogram::new();
        one.record(7);
        assert_eq!(one.summary(), QuantileSummary { count: 1, p50: 7, p90: 7, p99: 7, max: 7 });

        // 99 zeros and one huge outlier: p50/p90 stay 0, p99 lands exactly on
        // the rank-99 observation (still 0), max shows the outlier.
        let mut skewed = Histogram::new();
        for _ in 0..99 {
            skewed.record(0);
        }
        skewed.record(1_000_000);
        assert_eq!(skewed.quantile(0.50), 0);
        assert_eq!(skewed.quantile(0.99), 0);
        assert_eq!(skewed.quantile(1.0), 1_000_000);
        assert_eq!(skewed.max(), 1_000_000);
    }

    #[test]
    fn quantiles_are_deterministic_across_insertion_orders() {
        let values = [3u64, 900, 17, 17, 0, 255, 256, 44, 8, 8];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &values {
            a.record(v);
        }
        for &v in values.iter().rev() {
            b.record(v);
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn merge_combines_disjoint_and_overlapping_buckets() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 111);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        let rows = a.rows();
        assert_eq!(rows[1], BucketRow { lo: 4, hi: 7, count: 2 });
        // Merging an empty histogram changes nothing, in either direction.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
