//! Observability substrate for the V-Star reproduction: hierarchical spans
//! with phase attribution, monotonic counters, count-bucketed histograms, and
//! a deterministic JSONL event journal.
//!
//! # Model
//!
//! A *collector* is installed per thread with [`install`]; while one is
//! installed, the free functions [`span`], [`counter`], [`record`] and
//! [`event`] feed it. [`TelemetryGuard::finish`] uninstalls the collector and
//! returns a [`TelemetryReport`] split along the repository's determinism
//! convention: [`DeterministicFacts`] (counters, span tree, histograms,
//! journal — committed and diffable byte-for-byte across same-seed runs)
//! versus [`Timings`] (wall-clock span durations — reported, excluded from
//! determinism gates, following the `BENCH_serve.json` pattern).
//!
//! # Phase attribution
//!
//! Counter increments and histogram observations attach to the innermost
//! open span, so sibling subtrees partition every counter exactly: summing
//! `query.oracle.miss` over the `token-inference` and `vpa-learning`
//! subtrees is the paper's "%Q(Token)" / "%Q(VPA)" split, generalized to any
//! counter and any phase tree. Same-name sibling spans are merged (a loop
//! entering the `row-fill` span 50 times yields one node with
//! `entered == 50`), keeping the tree bounded by code structure.
//!
//! # Zero cost when disabled
//!
//! When no collector is installed anywhere in the process, every free
//! function is a single relaxed atomic load and a branch — no thread-local
//! access, no allocation. Instrumented hot paths (the compiled-artifact
//! serving layer) stay at full speed unless a collector is explicitly
//! installed, and instrumentation is applied at call granularity (per parse,
//! never per character) so even enabled runs pay a bounded price.
//!
//! Collectors are thread-local by design: work done on worker threads (e.g.
//! the batch-serving helpers) is not recorded, which keeps the journal
//! deterministic under arbitrary thread scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod metrics;
mod report;

pub use histogram::{BucketRow, Histogram, QuantileSummary};
pub use metrics::{
    ConnectionMetrics, Counts, GrammarMetrics, LatencyRow, MetricsRegistry, MetricsShard,
    MetricsSnapshot,
};
pub use report::{
    DeterministicFacts, JournalEvent, NamedHistogram, SpanFacts, SpanTiming, TelemetryReport,
    Timings,
};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide count of installed collectors: the fast-path gate. A relaxed
/// load of 0 is the entire cost of every telemetry call when disabled.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);
/// Monotonic install id, so stale guards from a replaced collector are inert.
static GENERATION: AtomicUsize = AtomicUsize::new(0);

/// Default bound on journal length; entries beyond it are counted, not kept.
const DEFAULT_JOURNAL_LIMIT: usize = 100_000;

struct Node {
    name: String,
    path: String,
    parent: usize,
    children: Vec<usize>,
    entered: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    nanos: u128,
}

struct State {
    nodes: Vec<Node>,
    current: usize,
    totals: BTreeMap<String, u64>,
    journal: Vec<JournalEvent>,
    journal_dropped: u64,
    journal_limit: usize,
    generation: usize,
}

impl State {
    fn new(generation: usize) -> Self {
        State {
            nodes: vec![Node {
                name: String::new(),
                path: String::new(),
                parent: 0,
                children: Vec::new(),
                entered: 1,
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                nanos: 0,
            }],
            current: 0,
            totals: BTreeMap::new(),
            journal: Vec::new(),
            journal_dropped: 0,
            journal_limit: DEFAULT_JOURNAL_LIMIT,
            generation,
        }
    }

    fn push_journal(
        &mut self,
        kind: &str,
        path: String,
        name: String,
        fields: BTreeMap<String, u64>,
    ) {
        if self.journal.len() >= self.journal_limit {
            self.journal_dropped += 1;
            return;
        }
        let seq = self.journal.len() as u64;
        self.journal.push(JournalEvent { seq, kind: kind.to_string(), path, name, fields });
    }

    /// Child of `current` named `name`, creating it on first entry
    /// (same-name siblings merge into one node).
    fn enter(&mut self, name: &str) -> usize {
        let parent = self.current;
        let existing =
            self.nodes[parent].children.iter().copied().find(|&c| self.nodes[c].name == name);
        let idx = match existing {
            Some(idx) => idx,
            None => {
                let path = if self.nodes[parent].path.is_empty() {
                    name.to_string()
                } else {
                    format!("{}/{}", self.nodes[parent].path, name)
                };
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    name: name.to_string(),
                    path,
                    parent,
                    children: Vec::new(),
                    entered: 0,
                    counters: BTreeMap::new(),
                    histograms: BTreeMap::new(),
                    nanos: 0,
                });
                self.nodes[parent].children.push(idx);
                idx
            }
        };
        self.nodes[idx].entered += 1;
        self.current = idx;
        let path = self.nodes[idx].path.clone();
        self.push_journal("open", path, name.to_string(), BTreeMap::new());
        idx
    }

    fn exit(&mut self, idx: usize, baseline: BTreeMap<String, u64>, elapsed: u128) {
        let node = &mut self.nodes[idx];
        node.nanos += elapsed;
        // The close entry carries this entry's counter deltas, so the journal
        // shows *where* budget went even when a span is entered many times.
        let mut deltas = BTreeMap::new();
        for (key, &value) in &node.counters {
            let before = baseline.get(key).copied().unwrap_or(0);
            if value > before {
                deltas.insert(key.clone(), value - before);
            }
        }
        let path = node.path.clone();
        let name = node.name.clone();
        let parent = node.parent;
        self.current = parent;
        self.push_journal("close", path, name, deltas);
    }

    fn facts_and_timings(&self) -> (DeterministicFacts, Timings) {
        let root = self.span_facts(0);
        let mut timings = Timings::default();
        self.collect_timings(0, &mut timings);
        (
            DeterministicFacts {
                counters: self.totals.clone(),
                root,
                journal: self.journal.clone(),
                journal_dropped: self.journal_dropped,
            },
            timings,
        )
    }

    fn span_facts(&self, idx: usize) -> SpanFacts {
        let node = &self.nodes[idx];
        SpanFacts {
            name: node.name.clone(),
            path: node.path.clone(),
            entered: node.entered,
            counters: node.counters.clone(),
            histograms: node
                .histograms
                .iter()
                .map(|(name, h)| NamedHistogram {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    buckets: h.rows(),
                })
                .collect(),
            children: node.children.iter().map(|&c| self.span_facts(c)).collect(),
        }
    }

    fn collect_timings(&self, idx: usize, out: &mut Timings) {
        let node = &self.nodes[idx];
        if idx != 0 {
            out.spans.push(SpanTiming {
                path: node.path.clone(),
                nanos: u64::try_from(node.nanos).unwrap_or(u64::MAX),
            });
        }
        for &c in &node.children {
            self.collect_timings(c, out);
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// Returns `true` when a collector is installed somewhere in the process.
///
/// This is the cheap pre-check instrumented code may use to skip building
/// telemetry inputs; the free functions already perform it internally.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Runs `f` on this thread's collector state, if one is installed.
fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        slot.as_mut().map(f)
    })
}

/// Installs a collector on the current thread and returns its guard.
///
/// # Panics
///
/// Panics if a collector is already installed on this thread; collections do
/// not nest (use spans to structure one collection instead).
#[must_use]
pub fn install() -> TelemetryGuard {
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        assert!(slot.is_none(), "a telemetry collector is already installed on this thread");
        *slot = Some(State::new(generation));
    });
    INSTALLED.fetch_add(1, Ordering::Relaxed);
    TelemetryGuard { generation, finished: false, _not_send: PhantomData }
}

/// Uninstalls this thread's collector if it matches `generation`; returns it.
fn take_state(generation: usize) -> Option<State> {
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.as_ref().is_some_and(|s| s.generation == generation) {
            INSTALLED.fetch_sub(1, Ordering::Relaxed);
            slot.take()
        } else {
            None
        }
    })
}

/// Owns one installed collector; dropping it uninstalls, [`TelemetryGuard::finish`]
/// uninstalls and returns the [`TelemetryReport`].
pub struct TelemetryGuard {
    generation: usize,
    finished: bool,
    /// Collectors are thread-local; the guard must not cross threads.
    _not_send: PhantomData<*const ()>,
}

impl TelemetryGuard {
    /// Ends the collection and returns everything it recorded.
    ///
    /// Spans still open at this point (guards not yet dropped) are reported
    /// as-is; their in-flight entry contributes no close journal entry.
    #[must_use]
    pub fn finish(mut self) -> TelemetryReport {
        self.finished = true;
        let state =
            take_state(self.generation).expect("the collector this guard owns is still installed");
        let (facts, timings) = state.facts_and_timings();
        TelemetryReport { facts, timings }
    }

    /// Grand total of counter `name` so far, without ending the collection.
    /// Useful for per-round deltas (queries per refinement round).
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        counter_total(name)
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if !self.finished {
            drop(take_state(self.generation));
        }
    }
}

/// Increments counter `name` by `delta`, attributed to the innermost open
/// span of this thread's collector. A no-op when disabled.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_state(|state| {
        bump(&mut state.totals, name, delta);
        let current = state.current;
        bump(&mut state.nodes[current].counters, name, delta);
    });
}

fn bump(map: &mut BTreeMap<String, u64>, name: &str, delta: u64) {
    if let Some(v) = map.get_mut(name) {
        *v += delta;
    } else {
        map.insert(name.to_string(), delta);
    }
}

/// Records `value` into histogram `name` on the innermost open span. A no-op
/// when disabled.
#[inline]
pub fn record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_state(|state| {
        let current = state.current;
        let node = &mut state.nodes[current];
        if let Some(h) = node.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            node.histograms.insert(name.to_string(), h);
        }
    });
}

/// Appends an explicit event with integer `fields` to the journal, stamped
/// with the innermost open span's path. A no-op when disabled.
#[inline]
pub fn event(name: &str, fields: &[(&str, u64)]) {
    if !enabled() {
        return;
    }
    with_state(|state| {
        let path = state.nodes[state.current].path.clone();
        let fields: BTreeMap<String, u64> =
            fields.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        state.push_journal("event", path, name.to_string(), fields);
    });
}

/// Grand total of counter `name` in this thread's collector (0 when disabled).
#[must_use]
pub fn counter_total(name: &str) -> u64 {
    with_state(|state| state.totals.get(name).copied().unwrap_or(0)).unwrap_or(0)
}

/// Opens a span named `name`; the returned guard closes it on drop. Returns
/// an inert guard when disabled.
///
/// Spans nest with scope: increments between open and close attribute to
/// this span (unless an inner span is open). Entering the same name twice
/// under one parent merges into a single reported node; entering it *nested*
/// (the name inside itself) produces distinct `a` and `a/a` nodes.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None, _not_send: PhantomData };
    }
    let active = with_state(|state| {
        let node = state.enter(name);
        // Baseline for the close entry's counter deltas: with same-name
        // merging a node accumulates across entries, so "spent during this
        // entry" is the node's counters at close minus this snapshot.
        let baseline = state.nodes[node].counters.clone();
        (state.generation, node, baseline)
    })
    .map(|(generation, node, baseline)| ActiveSpan {
        generation,
        node,
        baseline,
        started: Instant::now(),
    });
    SpanGuard { active, _not_send: PhantomData }
}

struct ActiveSpan {
    generation: usize,
    node: usize,
    baseline: BTreeMap<String, u64>,
    started: Instant,
}

/// Guard of one open span; dropping it closes the span.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Span guards belong to the thread whose collector opened them.
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let elapsed = active.started.elapsed().as_nanos();
        with_state(|state| {
            if state.generation != active.generation {
                return;
            }
            state.exit(active.node, active.baseline, elapsed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        // No collector on this thread: nothing panics, totals read as zero.
        counter("x", 3);
        record("h", 7);
        event("e", &[("k", 1)]);
        let _span = span("phase");
        assert_eq!(counter_total("x"), 0);
    }

    #[test]
    fn counters_attribute_to_innermost_span() {
        let guard = install();
        counter("q", 1); // outside any span → root
        {
            let _outer = span("learn");
            counter("q", 2);
            {
                let _inner = span("row-fill");
                counter("q", 4);
            }
            counter("q", 8);
        }
        let report = guard.finish();
        assert_eq!(report.facts.counter("q"), 15);
        assert_eq!(report.facts.root.own_counter("q"), 1);
        let learn = report.facts.span("learn").expect("learn span exists");
        assert_eq!(learn.own_counter("q"), 10);
        assert_eq!(learn.subtree_counter("q"), 14);
        assert_eq!(report.facts.subtree_counter("learn/row-fill", "q"), 4);
        assert_eq!(report.facts.root.subtree_counter("q"), 15, "subtrees partition the total");
    }

    #[test]
    fn same_name_siblings_merge_and_nested_same_name_stays_distinct() {
        let guard = install();
        for i in 0..3 {
            let _round = span("round");
            counter("work", i + 1);
        }
        {
            // Nested same-name phases: "a" inside "a" must not merge with its parent.
            let _a = span("a");
            counter("w", 1);
            let _aa = span("a");
            counter("w", 10);
        }
        let report = guard.finish();
        let round = report.facts.span("round").expect("merged round span");
        assert_eq!(round.entered, 3);
        assert_eq!(round.own_counter("work"), 6);
        // Exactly one "round" child under the root.
        let rounds = report.facts.root.children.iter().filter(|c| c.name == "round").count();
        assert_eq!(rounds, 1);
        let a = report.facts.span("a").expect("outer a");
        let aa = report.facts.span("a/a").expect("inner a");
        assert_eq!(a.own_counter("w"), 1);
        assert_eq!(aa.own_counter("w"), 10);
        assert_eq!(aa.path, "a/a");
        assert_eq!(a.subtree_counter("w"), 11);
    }

    #[test]
    fn empty_spans_are_reported_with_no_counters() {
        let guard = install();
        {
            let _empty = span("empty-phase");
        }
        let report = guard.finish();
        let empty = report.facts.span("empty-phase").expect("span exists");
        assert_eq!(empty.entered, 1);
        assert!(empty.counters.is_empty());
        assert!(empty.histograms.is_empty());
        assert!(empty.children.is_empty());
        // Journal: open then close, close with empty deltas.
        let kinds: Vec<&str> = report.facts.journal.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["open", "close"]);
        assert!(report.facts.journal[1].fields.is_empty());
    }

    #[test]
    fn close_entries_carry_per_entry_deltas() {
        let guard = install();
        for add in [3u64, 5u64] {
            let _round = span("round");
            counter("q", add);
        }
        let report = guard.finish();
        let closes: Vec<&JournalEvent> =
            report.facts.journal.iter().filter(|e| e.kind == "close").collect();
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].fields.get("q"), Some(&3));
        assert_eq!(closes[1].fields.get("q"), Some(&5), "second entry reports its own delta");
    }

    #[test]
    fn histograms_attach_to_spans() {
        let guard = install();
        {
            let _serve = span("serve");
            record("steps", 0);
            record("steps", 3);
            record("steps", 300);
        }
        let report = guard.finish();
        let serve = report.facts.span("serve").unwrap();
        assert_eq!(serve.histograms.len(), 1);
        let h = &serve.histograms[0];
        assert_eq!(h.name, "steps");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 303);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 300);
        assert_eq!(h.buckets.len(), 3, "zero-count buckets are skipped: {:?}", h.buckets);
    }

    #[test]
    fn events_are_journaled_under_the_open_span() {
        let guard = install();
        {
            let _fuzz = span("fuzz");
            event("coverage", &[("covered", 7), ("total", 100)]);
        }
        let report = guard.finish();
        let ev =
            report.facts.journal.iter().find(|e| e.kind == "event").expect("event entry exists");
        assert_eq!(ev.name, "coverage");
        assert_eq!(ev.path, "fuzz");
        assert_eq!(ev.fields.get("covered"), Some(&7));
        assert_eq!(ev.fields.get("total"), Some(&100));
        // seq is dense over the whole journal.
        for (i, entry) in report.facts.journal.iter().enumerate() {
            assert_eq!(entry.seq, i as u64);
        }
    }

    #[test]
    fn counter_total_reads_mid_collection() {
        let guard = install();
        counter("refine.queries", 10);
        assert_eq!(counter_total("refine.queries"), 10);
        assert_eq!(guard.counter_total("refine.queries"), 10);
        counter("refine.queries", 5);
        assert_eq!(guard.counter_total("refine.queries"), 15);
        let report = guard.finish();
        assert_eq!(report.facts.counter("refine.queries"), 15);
        // After finish, the thread is disabled again.
        assert_eq!(counter_total("refine.queries"), 0);
    }

    #[test]
    fn dropping_the_guard_uninstalls_without_a_report() {
        {
            let _guard = install();
            counter("x", 1);
        }
        assert_eq!(counter_total("x"), 0, "dropped collector leaves no state behind");
        // A fresh install starts clean.
        let guard = install();
        assert_eq!(guard.counter_total("x"), 0);
        let report = guard.finish();
        assert_eq!(report.facts.counter("x"), 0);
    }

    #[test]
    fn timings_are_separate_from_facts() {
        let guard = install();
        {
            let _a = span("a");
            counter("q", 1);
        }
        let report = guard.finish();
        assert_eq!(report.timings.spans.len(), 1);
        assert_eq!(report.timings.spans[0].path, "a");
        // The deterministic facts serialize without any wall-clock field.
        let json = serde_json::to_string(&report.facts).unwrap();
        assert!(!json.contains("nanos"));
        let timing_json = serde_json::to_string(&report.timings).unwrap();
        assert!(timing_json.contains("nanos"));
    }

    #[test]
    fn journal_lines_render_one_json_object_per_line() {
        let guard = install();
        {
            let _a = span("a");
            event("tick", &[("n", 1)]);
        }
        let report = guard.finish();
        let lines = report.facts.journal_lines();
        assert_eq!(lines.len(), 3); // open, event, close
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn journal_is_bounded() {
        let guard = install();
        COLLECTOR.with(|cell| {
            cell.borrow_mut().as_mut().unwrap().journal_limit = 4;
        });
        for _ in 0..5 {
            let _s = span("s");
        }
        let report = guard.finish();
        assert_eq!(report.facts.journal.len(), 4);
        assert_eq!(report.facts.journal_dropped, 6);
    }
}
