//! Serializable views of a finished telemetry collection.
//!
//! A [`TelemetryReport`] is split along the repository's determinism
//! convention (the `BENCH_serve.json` pattern): [`DeterministicFacts`] holds
//! everything that is a pure function of the run's inputs — counters, span
//! structure, histograms, the event journal — and is safe to commit and diff
//! byte-for-byte across same-seed runs; [`Timings`] holds the wall-clock span
//! durations, which are reported but excluded from determinism gates.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::histogram::{BucketRow, QuantileSummary};

/// One entry of the deterministic event journal.
///
/// Journal entries are ordered by `seq` and rendered one-per-line as JSON
/// (JSONL). Three kinds exist: `"open"` / `"close"` mark span entries and
/// exits (a `close` carries the counter deltas attributed to that entry), and
/// `"event"` is an explicit point-in-time record with caller-chosen fields.
/// No entry carries wall-clock data.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct JournalEvent {
    /// Position in the journal (0-based, dense).
    pub seq: u64,
    /// `"open"`, `"close"` or `"event"`.
    pub kind: String,
    /// Full span path (`"learn/vpa-learning/row-fill"`); for `"event"` kinds,
    /// the path of the span the event was recorded under.
    pub path: String,
    /// Span name for `"open"`/`"close"`, event name for `"event"`.
    pub name: String,
    /// Deterministic integer payload (counter deltas for `"close"`,
    /// caller-supplied fields for `"event"`, empty for `"open"`).
    pub fields: BTreeMap<String, u64>,
}

/// A histogram snapshot labelled with its name, in bucket form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct NamedHistogram {
    /// The histogram name (`"serve.steps_per_parse"`, …).
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// The non-empty power-of-two buckets in ascending order.
    pub buckets: Vec<BucketRow>,
}

impl NamedHistogram {
    /// The p50/p90/p99 + max digest of this snapshot, reconstructed from its
    /// bucket rows (see [`QuantileSummary::from_rows`]).
    #[must_use]
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary::from_rows(self.count, self.max, &self.buckets)
    }
}

/// The deterministic facts of one span: entry count, attributed counters and
/// histograms, and the same for every child span.
///
/// Same-name sibling spans are merged (a loop entering `span("row-fill")`
/// fifty times produces one node with `entered == 50`), so the tree is
/// bounded by the *structure* of the instrumented code, not by how often it
/// runs. Counters increment the innermost open span, which makes sibling
/// subtrees disjoint: per-phase attribution is exact, never double counted.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SpanFacts {
    /// Last path segment (the name passed to `span()`).
    pub name: String,
    /// Full `/`-separated path from the root.
    pub path: String,
    /// Number of times this span was entered.
    pub entered: u64,
    /// Counter increments attributed to this span itself (children excluded).
    pub counters: BTreeMap<String, u64>,
    /// Histogram observations attributed to this span itself.
    pub histograms: Vec<NamedHistogram>,
    /// Child spans in first-entry order.
    pub children: Vec<SpanFacts>,
}

impl SpanFacts {
    /// The value of counter `name` attributed to this span itself.
    #[must_use]
    pub fn own_counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of counter `name` summed over this span and its descendants.
    #[must_use]
    pub fn subtree_counter(&self, name: &str) -> u64 {
        self.own_counter(name) + self.children.iter().map(|c| c.subtree_counter(name)).sum::<u64>()
    }

    /// Finds the descendant span at `path` relative to this span (an empty
    /// path returns `self`).
    #[must_use]
    pub fn descendant(&self, path: &str) -> Option<&SpanFacts> {
        let mut node = self;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            node = node.children.iter().find(|c| c.name == segment)?;
        }
        Some(node)
    }
}

/// Everything deterministic a collection produced: grand-total counters, the
/// span tree, and the event journal. Byte-identical across same-seed runs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DeterministicFacts {
    /// Grand totals of every counter, across all spans.
    pub counters: BTreeMap<String, u64>,
    /// The span tree. The root is synthetic (name and path are empty) and
    /// holds whatever was recorded outside any span; real top-level spans are
    /// its children.
    pub root: SpanFacts,
    /// The bounded deterministic event journal, in `seq` order.
    pub journal: Vec<JournalEvent>,
    /// Number of journal entries dropped after the journal bound was hit.
    pub journal_dropped: u64,
}

impl DeterministicFacts {
    /// Grand total of counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The span at the `/`-separated `path`, if it was ever entered.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanFacts> {
        self.root.descendant(path)
    }

    /// The value of counter `counter` summed over the subtree rooted at
    /// `path` (0 when the span does not exist).
    #[must_use]
    pub fn subtree_counter(&self, path: &str, counter: &str) -> u64 {
        self.span(path).map_or(0, |s| s.subtree_counter(counter))
    }

    /// Renders the journal as JSONL (one JSON object per line).
    #[must_use]
    pub fn journal_lines(&self) -> Vec<String> {
        self.journal
            .iter()
            .map(|e| serde_json::to_string(e).expect("journal entries serialize"))
            .collect()
    }
}

/// Wall-clock duration of one span subtree entry, in nanoseconds.
///
/// Excluded from the determinism convention: two same-seed runs agree on
/// every [`DeterministicFacts`] byte but never on these.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SpanTiming {
    /// Full `/`-separated span path.
    pub path: String,
    /// Total wall-clock nanoseconds spent in this span (children included),
    /// summed over all entries.
    pub nanos: u64,
}

/// The wall-clock side of a collection: per-span durations in pre-order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Timings {
    /// One row per span, pre-order, children included in parents.
    pub spans: Vec<SpanTiming>,
}

/// A finished telemetry collection: the deterministic facts plus the
/// wall-clock timings, separated so consumers can commit the former and
/// merely report the latter.
#[derive(Clone, Debug, Serialize)]
pub struct TelemetryReport {
    /// Deterministic, diffable facts (counters, spans, histograms, journal).
    pub facts: DeterministicFacts,
    /// Wall-clock span durations (reported, never gated on).
    pub timings: Timings,
}
