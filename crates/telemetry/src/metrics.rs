//! Sharded process-wide serving metrics with Prometheus text exposition.
//!
//! The thread-local collector ([`crate::install`]) is built for single-thread
//! pipeline runs; a serving daemon needs the opposite shape: many connection
//! threads recording concurrently into one process-wide registry. A
//! [`MetricsRegistry`] hands every (grammar × connection) pair its own
//! [`MetricsShard`] — relaxed atomic counters plus per-shard histogram
//! mutexes — so the request hot path touches only its own shard and never a
//! global lock. Aggregation happens at snapshot time: [`MetricsRegistry::snapshot`]
//! folds the shards into per-connection rows, per-grammar rows and grand
//! totals, sorted by key so the result is deterministic whatever the accept
//! order was.
//!
//! The split follows the repository's determinism convention: everything in a
//! [`MetricsSnapshot`] (request/byte/verdict counters, request-size histogram
//! buckets) is a pure function of the served inputs and safe to commit and
//! diff; wall-clock latencies stay out of it and are reported separately
//! ([`MetricsRegistry::latencies`], [`MetricsRegistry::render_prometheus`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::histogram::{BucketRow, Histogram, QuantileSummary};

/// Monotonic request/byte/verdict counters, summable across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Counts {
    /// Requests that received a verdict.
    pub requests: u64,
    /// Input payload bytes across those requests.
    pub bytes: u64,
    /// Requests whose verdict was *accept*.
    pub accepted: u64,
    /// Requests whose verdict was *reject*.
    pub rejected: u64,
    /// Protocol or lookup errors attributed to this key.
    pub errors: u64,
}

impl Counts {
    /// Adds `other` into `self` field-wise.
    pub fn absorb(&mut self, other: &Counts) {
        self.requests += other.requests;
        self.bytes += other.bytes;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.errors += other.errors;
    }
}

/// The per-(grammar × connection) recording cell of a [`MetricsRegistry`].
///
/// The request path is lock-free on counters (relaxed atomics — totals are
/// read only at snapshot time, ordering does not matter) and takes only this
/// shard's own histogram mutexes, which no other connection contends on.
#[derive(Debug)]
pub struct MetricsShard {
    grammar: String,
    connection: String,
    requests: AtomicU64,
    bytes: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    /// Deterministic: request payload sizes.
    request_bytes: Mutex<Histogram>,
    /// Wall-clock: per-request latency in microseconds (never committed).
    latency_us: Mutex<Histogram>,
}

impl MetricsShard {
    fn new(grammar: &str, connection: &str) -> Self {
        MetricsShard {
            grammar: grammar.to_string(),
            connection: connection.to_string(),
            requests: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            request_bytes: Mutex::new(Histogram::new()),
            latency_us: Mutex::new(Histogram::new()),
        }
    }

    /// The grammar name this shard is keyed by.
    #[must_use]
    pub fn grammar(&self) -> &str {
        &self.grammar
    }

    /// The connection label this shard is keyed by.
    #[must_use]
    pub fn connection(&self) -> &str {
        &self.connection
    }

    /// Records one finished request: payload size, verdict, wall-clock
    /// latency in microseconds.
    pub fn record_request(&self, bytes: u64, accepted: bool, wall_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if accepted {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        self.request_bytes.lock().expect("no panics under this lock").record(bytes);
        self.latency_us.lock().expect("no panics under this lock").record(wall_us);
    }

    /// Records one error attributed to this shard's key.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn counts(&self) -> Counts {
        Counts {
            requests: self.requests.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// One (grammar × connection) row of a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ConnectionMetrics {
    /// Grammar name.
    pub grammar: String,
    /// Connection label (client-chosen via the protocol's hello).
    pub connection: String,
    /// The row's counters.
    pub counts: Counts,
}

/// One per-grammar aggregate row of a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct GrammarMetrics {
    /// Grammar name.
    pub grammar: String,
    /// Counters summed over every connection of this grammar.
    pub counts: Counts,
    /// Request-size histogram buckets (deterministic under fixed input).
    pub request_bytes: Vec<BucketRow>,
}

/// A deterministic aggregate view of a [`MetricsRegistry`]: per-connection
/// rows, per-grammar rows and grand totals, each sorted by key. Contains no
/// wall-clock data; under fixed served input it is byte-identical across
/// runs, whatever order connections were accepted in.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// Per-(grammar, connection) rows, sorted by that key. Same-key shards
    /// from reconnections are merged.
    pub connections: Vec<ConnectionMetrics>,
    /// Per-grammar aggregates, sorted by grammar.
    pub grammars: Vec<GrammarMetrics>,
    /// Grand totals over every shard.
    pub totals: Counts,
}

/// One per-(grammar × connection) latency digest (wall-clock; reported only,
/// never part of the determinism convention).
#[derive(Clone, Debug, Serialize)]
pub struct LatencyRow {
    /// Grammar name.
    pub grammar: String,
    /// Connection label.
    pub connection: String,
    /// p50/p90/p99 + max of per-request latency in microseconds.
    pub latency_us: QuantileSummary,
}

/// The process-wide metrics plane of a serving daemon.
///
/// Shards are handed out by [`MetricsRegistry::shard`] (typically once per
/// session bind, never per request); recording goes through the shard, so
/// the registry's own mutex is touched only at shard creation and snapshot
/// time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    shards: Mutex<Vec<Arc<MetricsShard>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The shard keyed `(grammar, connection)`, creating it on first use.
    /// Subsequent calls with the same key return the same shard.
    #[must_use]
    pub fn shard(&self, grammar: &str, connection: &str) -> Arc<MetricsShard> {
        let mut shards = self.shards.lock().expect("no panics under this lock");
        if let Some(existing) =
            shards.iter().find(|s| s.grammar == grammar && s.connection == connection)
        {
            return Arc::clone(existing);
        }
        let shard = Arc::new(MetricsShard::new(grammar, connection));
        shards.push(Arc::clone(&shard));
        shard
    }

    /// Number of distinct (grammar, connection) shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.lock().expect("no panics under this lock").len()
    }

    fn shards(&self) -> Vec<Arc<MetricsShard>> {
        self.shards.lock().expect("no panics under this lock").clone()
    }

    /// Aggregates every shard into the deterministic snapshot shape. The
    /// registry lock is held only to clone the shard list; in-flight requests
    /// on other threads keep recording while the fold runs.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut shards = self.shards();
        shards.sort_by(|a, b| (a.grammar(), a.connection()).cmp(&(b.grammar(), b.connection())));

        let mut connections: Vec<ConnectionMetrics> = Vec::new();
        let mut grammars: Vec<(String, Counts, Histogram)> = Vec::new();
        let mut totals = Counts::default();
        for shard in &shards {
            let counts = shard.counts();
            totals.absorb(&counts);
            match connections.last_mut() {
                Some(row)
                    if row.grammar == shard.grammar() && row.connection == shard.connection() =>
                {
                    row.counts.absorb(&counts);
                }
                _ => {
                    connections.push(ConnectionMetrics {
                        grammar: shard.grammar().to_string(),
                        connection: shard.connection().to_string(),
                        counts,
                    });
                }
            }
            let sizes = shard.request_bytes.lock().expect("no panics under this lock").clone();
            match grammars.last_mut() {
                Some((name, agg, hist)) if name.as_str() == shard.grammar() => {
                    agg.absorb(&counts);
                    hist.merge(&sizes);
                }
                _ => {
                    grammars.push((shard.grammar().to_string(), counts, sizes));
                }
            }
        }
        MetricsSnapshot {
            connections,
            grammars: grammars
                .into_iter()
                .map(|(grammar, counts, hist)| GrammarMetrics {
                    grammar,
                    counts,
                    request_bytes: hist.rows(),
                })
                .collect(),
            totals,
        }
    }

    /// Per-shard wall-clock latency digests, sorted by key (reported only —
    /// never committed or diffed).
    #[must_use]
    pub fn latencies(&self) -> Vec<LatencyRow> {
        let mut shards = self.shards();
        shards.sort_by(|a, b| (a.grammar(), a.connection()).cmp(&(b.grammar(), b.connection())));
        shards
            .iter()
            .map(|s| LatencyRow {
                grammar: s.grammar().to_string(),
                connection: s.connection().to_string(),
                latency_us: s.latency_us.lock().expect("no panics under this lock").summary(),
            })
            .collect()
    }

    /// Renders the whole registry in the Prometheus text exposition format:
    /// per-(grammar, connection) counters, per-grammar cumulative request-size
    /// and latency histograms with `_sum`/`_count` series. Series are sorted
    /// by label, so under fixed input only the latency series vary.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();

        let mut counter = |name: &str, help: &str, value: &dyn Fn(&Counts) -> u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for row in &snapshot.connections {
                out.push_str(&format!(
                    "{name}{{grammar=\"{}\",connection=\"{}\"}} {}\n",
                    escape_label(&row.grammar),
                    escape_label(&row.connection),
                    value(&row.counts),
                ));
            }
        };
        counter("vstar_requests_total", "Requests served, by grammar and connection.", &|c| {
            c.requests
        });
        counter("vstar_request_bytes_total", "Request payload bytes served.", &|c| c.bytes);
        counter("vstar_requests_accepted_total", "Requests with an accept verdict.", &|c| {
            c.accepted
        });
        counter("vstar_requests_rejected_total", "Requests with a reject verdict.", &|c| {
            c.rejected
        });
        counter("vstar_errors_total", "Protocol and lookup errors.", &|c| c.errors);

        // Per-grammar request-size histogram (deterministic buckets).
        out.push_str(
            "# HELP vstar_request_size_bytes Request payload size distribution.\n\
             # TYPE vstar_request_size_bytes histogram\n",
        );
        for row in &snapshot.grammars {
            let label = escape_label(&row.grammar);
            let mut cumulative = 0u64;
            for bucket in &row.request_bytes {
                cumulative += bucket.count;
                out.push_str(&format!(
                    "vstar_request_size_bytes_bucket{{grammar=\"{label}\",le=\"{}\"}} \
                     {cumulative}\n",
                    bucket.hi,
                ));
            }
            out.push_str(&format!(
                "vstar_request_size_bytes_bucket{{grammar=\"{label}\",le=\"+Inf\"}} {}\n",
                row.counts.requests,
            ));
            out.push_str(&format!(
                "vstar_request_size_bytes_sum{{grammar=\"{label}\"}} {}\n",
                row.counts.bytes,
            ));
            out.push_str(&format!(
                "vstar_request_size_bytes_count{{grammar=\"{label}\"}} {}\n",
                row.counts.requests,
            ));
        }

        // Per-grammar latency histogram (wall-clock; the whole point of the
        // endpoint, but excluded from any determinism gate).
        let mut latency_per_grammar: Vec<(String, Histogram)> = Vec::new();
        for shard in {
            let mut shards = self.shards();
            shards.sort_by(|a, b| a.grammar().cmp(b.grammar()));
            shards
        } {
            let hist = shard.latency_us.lock().expect("no panics under this lock").clone();
            match latency_per_grammar.last_mut() {
                Some((name, agg)) if name.as_str() == shard.grammar() => agg.merge(&hist),
                _ => latency_per_grammar.push((shard.grammar().to_string(), hist)),
            }
        }
        out.push_str(
            "# HELP vstar_request_latency_microseconds Request wall-clock latency.\n\
             # TYPE vstar_request_latency_microseconds histogram\n",
        );
        for (grammar, hist) in &latency_per_grammar {
            let label = escape_label(grammar);
            let mut cumulative = 0u64;
            for bucket in hist.rows() {
                cumulative += bucket.count;
                out.push_str(&format!(
                    "vstar_request_latency_microseconds_bucket{{grammar=\"{label}\",\
                     le=\"{}\"}} {cumulative}\n",
                    bucket.hi,
                ));
            }
            out.push_str(&format!(
                "vstar_request_latency_microseconds_bucket{{grammar=\"{label}\",le=\"+Inf\"}} {}\n",
                hist.count(),
            ));
            out.push_str(&format!(
                "vstar_request_latency_microseconds_sum{{grammar=\"{label}\"}} {}\n",
                hist.sum(),
            ));
            out.push_str(&format!(
                "vstar_request_latency_microseconds_count{{grammar=\"{label}\"}} {}\n",
                hist.count(),
            ));
        }
        out
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_keyed_and_reused() {
        let registry = MetricsRegistry::new();
        let a = registry.shard("json", "client-0");
        let b = registry.shard("json", "client-0");
        let c = registry.shard("json", "client-1");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.shard_count(), 2);
        assert_eq!(a.grammar(), "json");
        assert_eq!(c.connection(), "client-1");
    }

    #[test]
    fn snapshot_partitions_exactly_into_connections_and_grammars() {
        let registry = MetricsRegistry::new();
        registry.shard("json", "c0").record_request(10, true, 100);
        registry.shard("json", "c0").record_request(20, false, 100);
        registry.shard("json", "c1").record_request(30, true, 100);
        registry.shard("xml", "c0").record_request(5, true, 100);
        registry.shard("xml", "c0").record_error();

        let snap = registry.snapshot();
        assert_eq!(snap.connections.len(), 3);
        assert_eq!(snap.grammars.len(), 2);
        // Sorted by (grammar, connection).
        let keys: Vec<(&str, &str)> =
            snap.connections.iter().map(|r| (r.grammar.as_str(), r.connection.as_str())).collect();
        assert_eq!(keys, [("json", "c0"), ("json", "c1"), ("xml", "c0")]);
        // Per-connection rows sum to per-grammar rows sum to totals.
        let mut from_connections = Counts::default();
        for row in &snap.connections {
            from_connections.absorb(&row.counts);
        }
        let mut from_grammars = Counts::default();
        for row in &snap.grammars {
            from_grammars.absorb(&row.counts);
        }
        assert_eq!(from_connections, snap.totals);
        assert_eq!(from_grammars, snap.totals);
        assert_eq!(
            snap.totals,
            Counts { requests: 4, bytes: 65, accepted: 3, rejected: 1, errors: 1 }
        );
        // The per-grammar histogram folds every connection's sizes.
        let json = &snap.grammars[0];
        assert_eq!(json.grammar, "json");
        assert_eq!(json.request_bytes.iter().map(|b| b.count).sum::<u64>(), 3);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let shard = registry.shard("g", &format!("c{t}"));
                    for i in 0..1000u64 {
                        shard.record_request(i % 7, i % 3 == 0, 1);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.totals.requests, 8000);
        assert_eq!(snap.totals.accepted + snap.totals.rejected, 8000);
        assert_eq!(snap.grammars[0].request_bytes.iter().map(|b| b.count).sum::<u64>(), 8000);
    }

    #[test]
    fn snapshot_merges_reconnected_same_key_shards() {
        let registry = MetricsRegistry::new();
        // Two *distinct* shard objects under one key cannot happen through
        // `shard()`, but reconnections re-request the key; the merged row
        // must carry both sessions' counts.
        registry.shard("g", "c").record_request(1, true, 1);
        registry.shard("g", "c").record_request(2, false, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.connections.len(), 1);
        assert_eq!(snap.connections[0].counts.requests, 2);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_escaped() {
        let registry = MetricsRegistry::new();
        registry.shard("json", "na\"ive\\conn").record_request(10, true, 50);
        registry.shard("json", "a").record_request(2, false, 50);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE vstar_requests_total counter"));
        assert!(text.contains("vstar_requests_total{grammar=\"json\",connection=\"a\"} 1"));
        assert!(text.contains("connection=\"na\\\"ive\\\\conn\""));
        assert!(text.contains("vstar_request_size_bytes_sum{grammar=\"json\"} 12"));
        assert!(text.contains("vstar_request_size_bytes_bucket{grammar=\"json\",le=\"+Inf\"} 2"));
        assert!(text.contains("vstar_request_latency_microseconds_count{grammar=\"json\"} 2"));
        // Sorted: connection "a" appears before the escaped one.
        let a = text.find("connection=\"a\"").unwrap();
        let b = text.find("na\\\"ive").unwrap();
        assert!(a < b);
        // Cumulative buckets are nondecreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("vstar_request_size_bytes_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn latency_rows_digest_per_shard() {
        let registry = MetricsRegistry::new();
        let shard = registry.shard("g", "c");
        for us in [10u64, 20, 30, 40] {
            shard.record_request(1, true, us);
        }
        let rows = registry.latencies();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].latency_us.count, 4);
        assert_eq!(rows[0].latency_us.max, 40);
        assert!(rows[0].latency_us.p50 >= 10);
    }

    #[test]
    fn serialized_snapshot_has_no_wall_clock_fields() {
        let registry = MetricsRegistry::new();
        registry.shard("g", "c").record_request(3, true, 999);
        let json = serde_json::to_string(&registry.snapshot()).unwrap();
        assert!(!json.contains("latency"), "snapshot must stay wall-clock-free: {json}");
        assert!(json.contains("\"requests\":1"), "one request recorded: {json}");
        assert!(json.contains("\"bytes\":3"), "three payload bytes recorded: {json}");
    }
}
