//! Lint passes over compiled serving artifacts: dense-table integrity,
//! item-set reachability, compiled stack-symbol liveness, and tokenizer
//! decision ambiguity.
//!
//! A [`CompiledGrammar`] is trusted at serving time — `recognize_word` indexes
//! its tables without bounds checks beyond slice panics — so the integrity
//! lints re-derive every invariant the compiler is supposed to establish
//! (table geometry, cell ranges, start-state sanity) and report violations as
//! errors. Reachability and liveness findings are informational: the item-set
//! builder genuinely interns states that are never live (return targets of
//! pairs that cannot co-occur), and knowing how many is table-size headroom.

use std::collections::{BTreeSet, VecDeque};

use vstar::{TokenKind, TokenMatcher};
use vstar_parser::{CompiledGrammar, TableView};

use crate::report::{AnalysisReport, Severity};
use crate::vpg_lints::analyze_vpg;

/// How many individual orphan states/symbols get listed before the finding
/// switches to a count (no silent caps — the count is explicit).
const MAX_LISTED: usize = 16;

/// Runs every compiled-artifact lint and returns the findings.
///
/// The source grammar's lints run too, prefixed `grammar/`. Compiled-layer
/// codes: `CMP000` artifact stats card (info, always emitted), `CMP001`
/// table-geometry or cell-range violation (error), `CMP002` start-state
/// inconsistency (error), `CMP003` orphan interned item-set states (info),
/// `CMP004` compiled stack symbols never pushed or never popped from
/// reachable states (info), `CMP005` two different pairs with identical
/// same-kind token languages (warn), `CMP006` overlapping same-kind token
/// languages (info).
#[must_use]
pub fn analyze_compiled(cg: &CompiledGrammar) -> AnalysisReport {
    let mut report = AnalysisReport::new("compiled");
    report.absorb(analyze_vpg(cg.vpg()), "grammar");

    // The stats card first: the same identity block the serving daemon's
    // `/grammars` endpoint reports, so an artifact can be matched to a lint
    // report by version + fingerprint alone.
    let stats = cg.stats();
    report.push(
        "CMP000",
        Severity::Info,
        "stats",
        format!(
            "artifact v{} {} ({} mode): {} states, {} stack symbols, {} table cells \
             ({} plain / {} call / {} ret), {} nonterminals, {} rules",
            stats.artifact_version,
            stats.artifact_hash,
            stats.mode,
            stats.automaton_states,
            stats.stack_symbols,
            stats.plain_table_cells + stats.call_table_cells + stats.ret_table_cells,
            stats.plain_table_cells,
            stats.call_table_cells,
            stats.ret_table_cells,
            stats.nonterminals,
            stats.rules,
        ),
    );

    let view = cg.table_view();
    table_integrity(&view, &mut report);
    if report.is_clean(Severity::Error) {
        // Reachability walks index the tables; only meaningful once the
        // geometry is known good.
        reachability(&view, &mut report);
    }
    tokenizer_ambiguity(cg, &mut report);
    report
}

fn table_integrity(view: &TableView<'_>, report: &mut AnalysisReport) {
    let states = view.state_count();
    let syms = view.stack_symbol_count();
    if states == 0 {
        report.push("CMP002", Severity::Error, "states", "the artifact has no states at all");
        return;
    }
    if view.start() as usize >= states {
        report.push(
            "CMP002",
            Severity::Error,
            "start",
            format!("start state {} out of range (state count {states})", view.start()),
        );
    }

    let expect = |report: &mut AnalysisReport, table: &str, len: usize, want: usize| {
        if len != want {
            report.push(
                "CMP001",
                Severity::Error,
                format!("table/{table}"),
                format!("table length {len} does not match its geometry (expected {want})"),
            );
        }
    };
    expect(report, "plain", view.plain_table().len(), states * view.plain_chars().len());
    expect(report, "call", view.call_table().len(), states * view.call_chars().len());
    expect(report, "ret", view.ret_table().len(), states * syms * view.ret_chars().len());

    let mut bad_cells = 0usize;
    for &t in view.plain_table() {
        if t != TableView::DEAD && t as usize >= states {
            bad_cells += 1;
        }
    }
    for &(body, sym) in view.call_table() {
        if body != TableView::DEAD && (body as usize >= states || sym as usize >= syms) {
            bad_cells += 1;
        }
    }
    for &t in view.ret_table() {
        if t != TableView::DEAD && t as usize >= states {
            bad_cells += 1;
        }
    }
    if bad_cells > 0 {
        report.push(
            "CMP001",
            Severity::Error,
            "table/cells",
            format!("{bad_cells} transition cell(s) point outside the state or symbol range"),
        );
    }
}

fn reachability(view: &TableView<'_>, report: &mut AnalysisReport) {
    let states = view.state_count();
    let syms = view.stack_symbol_count();
    let n_plain = view.plain_chars().len();
    let n_call = view.call_chars().len();
    let n_ret = view.ret_chars().len();

    // Joint fixpoint: reachable states grow the pushable-symbol set, which
    // unlocks more return rows (stack over-approximation, as in the VPA pass).
    let mut reachable = vec![false; states];
    reachable[view.start() as usize] = true;
    let mut pushable = vec![false; syms];
    loop {
        let mut changed = false;
        for q in 0..states {
            if !reachable[q] {
                continue;
            }
            for id in 0..n_plain {
                let t = view.plain_table()[q * n_plain + id];
                if t != TableView::DEAD && !reachable[t as usize] {
                    reachable[t as usize] = true;
                    changed = true;
                }
            }
            for id in 0..n_call {
                let (body, sym) = view.call_table()[q * n_call + id];
                if body != TableView::DEAD {
                    if !reachable[body as usize] {
                        reachable[body as usize] = true;
                        changed = true;
                    }
                    if !pushable[sym as usize] {
                        pushable[sym as usize] = true;
                        changed = true;
                    }
                }
            }
            for (sym, pushed) in pushable.iter().enumerate() {
                if !pushed {
                    continue;
                }
                for id in 0..n_ret {
                    let t = view.ret_table()[(q * syms + sym) * n_ret + id];
                    if t != TableView::DEAD && !reachable[t as usize] {
                        reachable[t as usize] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let orphans: Vec<usize> = (0..states).filter(|&q| !reachable[q]).collect();
    if !orphans.is_empty() {
        report.push(
            "CMP003",
            Severity::Info,
            "states/orphans",
            format!(
                "{} of {states} interned item-set state(s) unreachable from the start: {:?}{}",
                orphans.len(),
                &orphans[..orphans.len().min(MAX_LISTED)],
                if orphans.len() > MAX_LISTED { " (truncated)" } else { "" }
            ),
        );
    }

    let mut popped = vec![false; syms];
    for (q, _) in reachable.iter().enumerate().filter(|&(_, &r)| r) {
        for (sym, is_pushed) in pushable.iter().enumerate() {
            if !is_pushed {
                continue;
            }
            for id in 0..n_ret {
                if view.ret_table()[(q * syms + sym) * n_ret + id] != TableView::DEAD {
                    popped[sym] = true;
                }
            }
        }
    }
    let dead_syms: Vec<usize> = (0..syms).filter(|&s| !pushable[s] || !popped[s]).collect();
    if !dead_syms.is_empty() {
        report.push(
            "CMP004",
            Severity::Info,
            "stack-symbols/dead",
            format!(
                "{} of {syms} compiled stack symbol(s) never pushed or never popped on a \
                 reachable path: {:?}{}",
                dead_syms.len(),
                &dead_syms[..dead_syms.len().min(MAX_LISTED)],
                if dead_syms.len() > MAX_LISTED { " (truncated)" } else { "" }
            ),
        );
    }
}

fn tokenizer_ambiguity(cg: &CompiledGrammar, report: &mut AnalysisReport) {
    let pairs = cg.tokenizer().pairs();
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            for (kind, a, b) in [
                (TokenKind::Call, &pairs[i].call, &pairs[j].call),
                (TokenKind::Return, &pairs[i].ret, &pairs[j].ret),
            ] {
                let kind_name = match kind {
                    TokenKind::Call => "call",
                    TokenKind::Return => "return",
                };
                let location = format!("tokenizer/{kind_name}/{i}-{j}");
                if matchers_equivalent(a, b) {
                    report.push(
                        "CMP005",
                        Severity::Warn,
                        location,
                        format!(
                            "pairs {i} and {j} have identical {kind_name}-token languages: \
                             occurrences of those tokens are ambiguous"
                        ),
                    );
                } else if matchers_overlap(a, b) {
                    report.push(
                        "CMP006",
                        Severity::Info,
                        location,
                        format!(
                            "pairs {i} and {j} have overlapping {kind_name}-token languages: \
                             some strings tokenize both ways"
                        ),
                    );
                }
            }
        }
    }
}

/// A uniform DFA view over both matcher representations: a literal is the
/// linear automaton over its characters.
struct MatcherDfa<'a> {
    matcher: &'a TokenMatcher,
}

impl MatcherDfa<'_> {
    fn alphabet(&self) -> BTreeSet<char> {
        match self.matcher {
            TokenMatcher::Literal(lit) => lit.chars().collect(),
            TokenMatcher::Dfa(dfa) => dfa.alphabet().iter().copied().collect(),
        }
    }

    fn initial(&self) -> usize {
        match self.matcher {
            TokenMatcher::Literal(_) => 0,
            TokenMatcher::Dfa(dfa) => dfa.initial(),
        }
    }

    fn step(&self, state: usize, c: char) -> Option<usize> {
        match self.matcher {
            TokenMatcher::Literal(lit) => (lit.chars().nth(state) == Some(c)).then_some(state + 1),
            TokenMatcher::Dfa(dfa) => dfa.delta(state, c),
        }
    }

    fn accepting(&self, state: usize) -> bool {
        match self.matcher {
            TokenMatcher::Literal(lit) => state == lit.chars().count(),
            TokenMatcher::Dfa(dfa) => dfa.accepting().contains(&state),
        }
    }
}

/// `true` when both matchers accept exactly the same non-empty strings
/// (product walk over the union alphabet; an absent transition is a dead
/// state, which accepts nothing).
fn matchers_equivalent(a: &TokenMatcher, b: &TokenMatcher) -> bool {
    let (da, db) = (MatcherDfa { matcher: a }, MatcherDfa { matcher: b });
    let alphabet: BTreeSet<char> = da.alphabet().union(&db.alphabet()).copied().collect();
    let start = (Some(da.initial()), Some(db.initial()));
    let mut seen = BTreeSet::from([start]);
    let mut queue = VecDeque::from([(start, 0usize)]);
    while let Some(((sa, sb), depth)) = queue.pop_front() {
        let acc_a = sa.is_some_and(|s| da.accepting(s));
        let acc_b = sb.is_some_and(|s| db.accepting(s));
        // The empty string never tokenizes, so disagreement at depth 0 is
        // irrelevant.
        if depth > 0 && acc_a != acc_b {
            return false;
        }
        if sa.is_none() && sb.is_none() {
            continue; // both dead: no string revives either.
        }
        for &c in &alphabet {
            let next = (sa.and_then(|s| da.step(s, c)), sb.and_then(|s| db.step(s, c)));
            if seen.insert(next) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    true
}

/// `true` when some non-empty string is accepted by both matchers.
fn matchers_overlap(a: &TokenMatcher, b: &TokenMatcher) -> bool {
    let (da, db) = (MatcherDfa { matcher: a }, MatcherDfa { matcher: b });
    let alphabet: BTreeSet<char> = da.alphabet().intersection(&db.alphabet()).copied().collect();
    let start = (da.initial(), db.initial());
    let mut seen = BTreeSet::from([start]);
    let mut queue = VecDeque::from([(start, 0usize)]);
    while let Some(((sa, sb), depth)) = queue.pop_front() {
        if depth > 0 && da.accepting(sa) && db.accepting(sb) {
            return true;
        }
        for &c in &alphabet {
            if let (Some(na), Some(nb)) = (da.step(sa, c), db.step(sb, c)) {
                if seen.insert((na, nb)) {
                    queue.push_back(((na, nb), depth + 1));
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;

    #[test]
    fn figure1_compiles_clean() {
        let cg = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let report = analyze_compiled(&cg);
        assert!(report.is_clean(Severity::Warn), "{:?}", report.at_least(Severity::Warn));
    }

    #[test]
    fn stats_card_is_always_emitted_and_names_the_artifact() {
        let cg = CompiledGrammar::from_vpg(&figure1_grammar()).unwrap();
        let report = analyze_compiled(&cg);
        assert!(report.has("CMP000"), "{:?}", report.diagnostics);
        let stats = cg.stats();
        let card = report.diagnostics.iter().find(|d| d.code == "CMP000").unwrap();
        assert!(card.message.contains(&stats.artifact_hash), "{card:?}");
        assert!(card.message.contains(&format!("{} states", stats.automaton_states)), "{card:?}");
    }

    #[test]
    fn matcher_equivalence_and_overlap() {
        let lit = |s: &str| TokenMatcher::Literal(s.to_string());
        assert!(matchers_equivalent(&lit("ab"), &lit("ab")));
        assert!(!matchers_equivalent(&lit("ab"), &lit("ac")));
        assert!(matchers_overlap(&lit("ab"), &lit("ab")));
        assert!(!matchers_overlap(&lit("ab"), &lit("b")));

        // DFA for a+ vs literal "a": overlapping but not equivalent.
        use std::collections::BTreeSet as Set;
        let mut accepting = Set::new();
        accepting.insert(1);
        let dfa = vstar_automata::Dfa::new(
            vec!['a'],
            2,
            0,
            accepting,
            [((0, 'a'), 1), ((1, 'a'), 1)].into_iter().collect(),
        );
        let plus = TokenMatcher::Dfa(dfa);
        assert!(matchers_overlap(&plus, &lit("a")));
        assert!(!matchers_equivalent(&plus, &lit("a")));
        assert!(matchers_equivalent(&plus, &plus));
    }

    #[test]
    fn duplicate_pair_matchers_are_flagged() {
        use vstar::{LearnedLanguage, PartialTokenizer, TokenDiscovery, TokenPair};

        // A grammar over two marker pairs whose underlying call tokens are the
        // same literal — the tokenizer cannot tell the pairs apart.
        let c0 = vstar::tokenizer::call_marker(0);
        let r0 = vstar::tokenizer::return_marker(0);
        let c1 = vstar::tokenizer::call_marker(1);
        let r1 = vstar::tokenizer::return_marker(1);
        let tagging = vstar_vpl::Tagging::from_pairs([(c0, r0), (c1, r1)]).unwrap();
        let mut b = vstar_vpl::VpgBuilder::new(tagging.clone());
        let s = b.nonterminal("S");
        b.empty_rule(s);
        b.match_rule(s, c0, s, r0, s);
        b.match_rule(s, c1, s, r1, s);
        let vpg = b.build(s).unwrap();

        let lit = |s: &str| TokenMatcher::Literal(s.to_string());
        let mut tokenizer = PartialTokenizer::new();
        tokenizer.push_pair(TokenPair { call: lit("begin"), ret: lit("end") });
        tokenizer.push_pair(TokenPair { call: lit("begin"), ret: lit("stop") });

        let mut vb = vstar_vpl::VpaBuilder::new(tagging);
        let q0 = vb.add_state();
        vb.set_initial(q0);
        vb.add_accepting(q0);
        let vpa = vb.build().unwrap();

        let lang = LearnedLanguage::new(vpa, vpg, tokenizer, TokenDiscovery::Tokens);
        let cg = CompiledGrammar::from_learned(&lang).unwrap();
        let report = analyze_compiled(&cg);
        assert!(report.has("CMP005"), "{:?}", report.diagnostics);
    }
}
