//! Static analysis and lint passes over V-Star's learned artifacts.
//!
//! Learning produces artifacts at three layers — the extracted [`Vpg`], the
//! learned [`Vpa`] and the compiled serving [`CompiledGrammar`] — and each
//! layer can silently carry structure that no input ever exercises or, after
//! fault injection and future pipeline changes, structure that is outright
//! inconsistent. This crate audits all three statically, without an oracle
//! and without running a single membership query:
//!
//! * [`analyze_vpg`] — grammar lints: unreachable/unproductive nonterminals,
//!   cross-pair matching rules, empty language (`VPG001`–`VPG004`).
//! * [`analyze_vpa`] — automaton lints: dead states, unpushed/unpopped stack
//!   symbols, cross-pair return transitions (the shape of the learner bug
//!   fixed by counterexample-guided refinement), empty language, bottom
//!   returns, table-coverage summary (`VPA001`–`VPA007`).
//! * [`analyze_congruence`] — behaviorally mergeable state and stack-symbol
//!   classes (`CNG000`–`CNG002`), the headroom estimate for automaton-size
//!   reduction.
//! * [`analyze_learned`] — the whole-language view: component passes plus
//!   grammar-vs-automaton extraction equality and tokenizer-vs-tagging
//!   consistency (`LRN001`–`LRN002`).
//! * [`analyze_compiled`] — serving-artifact lints: dense-table geometry and
//!   cell ranges, orphan interned item-sets, compiled stack-symbol liveness,
//!   tokenizer decision ambiguity, led by an always-on artifact stats card
//!   (`CMP000`–`CMP006`).
//! * [`analyze_passive`] — corpus-learned artifacts: construction stats card
//!   (always emitted), training-consistency audit, conversion-loss
//!   accounting, finite-state degeneration (`PSV000`–`PSV004`).
//!
//! Every pass reports through the same [`AnalysisReport`] /
//! [`Diagnostic`] / [`Severity`] model, so gating is uniform:
//! `report.is_clean(Severity::Warn)` is the CI bar for refined learned
//! grammars. The [`Analyze`] trait puts an `analyze()` entry point on each
//! artifact type.
//!
//! # Example
//!
//! ```
//! use vstar_analyze::{Analyze, Severity};
//! use vstar_vpl::grammar::figure1_grammar;
//!
//! let report = figure1_grammar().analyze();
//! assert!(report.is_clean(Severity::Warn));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled_lints;
pub mod congruence;
pub mod learned;
pub mod passive;
pub mod report;
pub mod vpa_lints;
pub mod vpg_lints;

pub use compiled_lints::analyze_compiled;
pub use congruence::{analyze_congruence, congruence_summary, CongruenceSummary};
pub use learned::analyze_learned;
pub use passive::analyze_passive;
pub use report::{AnalysisReport, Diagnostic, Severity};
pub use vpa_lints::analyze_vpa;
pub use vpg_lints::analyze_vpg;

use vstar::{LearnedLanguage, VStarResult};
use vstar_parser::CompiledGrammar;
use vstar_passive::PassiveResult;
use vstar_vpl::{Vpa, Vpg};

/// Uniform `analyze()` entry point over every artifact layer.
pub trait Analyze {
    /// Runs the static passes appropriate for this artifact and returns the
    /// findings.
    fn analyze(&self) -> AnalysisReport;
}

impl Analyze for Vpg {
    fn analyze(&self) -> AnalysisReport {
        analyze_vpg(self)
    }
}

impl Analyze for Vpa {
    fn analyze(&self) -> AnalysisReport {
        let mut report = analyze_vpa(self);
        report.absorb(analyze_congruence(self), "congruence");
        report
    }
}

impl Analyze for LearnedLanguage {
    fn analyze(&self) -> AnalysisReport {
        analyze_learned(self)
    }
}

impl Analyze for VStarResult {
    fn analyze(&self) -> AnalysisReport {
        analyze_learned(&self.as_learned_language())
    }
}

impl Analyze for CompiledGrammar {
    fn analyze(&self) -> AnalysisReport {
        analyze_compiled(self)
    }
}

impl Analyze for PassiveResult {
    fn analyze(&self) -> AnalysisReport {
        analyze_passive(self, None)
    }
}
