//! Cross-artifact lints over a whole learned language: does the grammar still
//! match the automaton it was extracted from, and does the tokenizer agree
//! with the automaton's tagging?
//!
//! These are the checks that catch *reassembled* artifacts: the pipeline
//! itself always produces a consistent triple, but
//! [`LearnedLanguage::with_vpg`]-style surgery (or a bug in a future pipeline
//! stage) can pair a VPA with a grammar describing a different language. The
//! VPA→VPG extraction is deterministic, so re-running it is a complete
//! equality oracle for that drift.

use vstar::tokenizer::{call_marker, return_marker};
use vstar::{LearnedLanguage, TokenDiscovery};
use vstar_vpl::vpa_to_vpg;

use crate::congruence::analyze_congruence;
use crate::report::{AnalysisReport, Severity};
use crate::vpa_lints::analyze_vpa;
use crate::vpg_lints::analyze_vpg;

/// Runs the grammar, automaton and congruence passes over the components of
/// `lang` and the cross-artifact lints over their combination.
///
/// Component findings keep their codes and gain `grammar/`, `automaton/` and
/// `congruence/` location prefixes. The combined-layer codes are `LRN001`
/// (error: the grammar is not the automaton's extraction) and `LRN002`
/// (error: tokenizer and tagging disagree).
#[must_use]
pub fn analyze_learned(lang: &LearnedLanguage) -> AnalysisReport {
    let mut report = AnalysisReport::new("learned");
    report.absorb(analyze_vpg(lang.vpg()), "grammar");
    report.absorb(analyze_vpa(lang.vpa()), "automaton");
    report.absorb(analyze_congruence(lang.vpa()), "congruence");

    if *lang.vpg() != vpa_to_vpg(lang.vpa()) {
        report.push(
            "LRN001",
            Severity::Error,
            "grammar-vs-automaton",
            "the grammar is not the deterministic extraction of the automaton: \
             the two artifacts describe different languages",
        );
    }

    let tagging = lang.vpa().tagging();
    match lang.mode() {
        TokenDiscovery::Tokens => {
            let expected: Vec<(char, char)> = (0..lang.tokenizer().pair_count())
                .map(|i| (call_marker(i), return_marker(i)))
                .collect();
            if tagging.pairs() != expected.as_slice() {
                report.push(
                    "LRN002",
                    Severity::Error,
                    "tokenizer-vs-tagging",
                    format!(
                        "token-mode tagging must pair the tokenizer's marker symbols \
                         (expected {} marker pair(s), found {:?})",
                        expected.len(),
                        tagging.pairs()
                    ),
                );
            }
        }
        TokenDiscovery::Characters => {
            if tagging.pair_count() != lang.tokenizer().pair_count() {
                report.push(
                    "LRN002",
                    Severity::Error,
                    "tokenizer-vs-tagging",
                    format!(
                        "character-mode tokenizer carries {} pair(s) but the tagging has {}",
                        lang.tokenizer().pair_count(),
                        tagging.pair_count()
                    ),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar::{Mat, VStar, VStarConfig};
    use vstar_vpl::{Tagging, VpgBuilder};

    fn dyck(s: &str) -> bool {
        let mut depth = 0usize;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                'x' => {}
                _ => return false,
            }
        }
        depth == 0
    }

    fn learn_dyck() -> LearnedLanguage {
        let oracle = |s: &str| dyck(s);
        let mat = Mat::new(&oracle);
        let config =
            VStarConfig { token_discovery: TokenDiscovery::Characters, ..VStarConfig::default() };
        let seeds = ["", "()", "(x)", "x", "(())x"];
        VStar::new(config)
            .learn(&mat, &['(', ')', 'x'], &seeds.map(String::from))
            .expect("dyck learns")
            .as_learned_language()
    }

    #[test]
    fn genuine_learned_language_has_no_errors() {
        let report = analyze_learned(&learn_dyck());
        assert!(report.is_clean(Severity::Error), "{:?}", report.at_least(Severity::Error));
        assert!(report.has("CNG000"));
    }

    #[test]
    fn swapped_grammar_is_caught() {
        let lang = learn_dyck();
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.empty_rule(s);
        b.match_rule(s, '(', s, ')', s);
        let imposter = b.build(s).unwrap();
        let report = analyze_learned(&lang.with_vpg(imposter));
        assert!(report.has("LRN001"), "{:?}", report.diagnostics);
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }
}
