//! Lint passes over passively learned grammars.
//!
//! A [`PassiveResult`] is built from a positive corpus with no oracle in the
//! loop, so the usual "is it right" questions are unanswerable statically —
//! but the construction makes promises that *are* checkable: training
//! consistency (every well-matched corpus word is accepted) and explicit
//! accounting of everything the pipeline dropped (ill-matched words, demoted
//! bracket occurrences). These passes audit those promises and lead with an
//! always-on stats card so a passive artifact can never lint as silently
//! "clean because nothing looked".

use vstar_passive::{PassiveResult, ReinferReport};

use crate::report::{AnalysisReport, Severity};
use crate::vpg_lints::analyze_vpg;

/// Runs every passive-artifact lint and returns the findings.
///
/// The extracted grammar's lints run too, prefixed `grammar/`. Passive-layer
/// codes: `PSV000` construction stats card (info, always emitted), `PSV001`
/// training-consistency violation (error — the merged automaton rejects a
/// word it was built from, which the windowed-suffix construction is supposed
/// to make impossible), `PSV002` corpus words skipped as ill-matched under
/// the tagging (warn — the conversion layer promises well-matched output, so
/// skips mean the words were converted elsewhere), `PSV003` bracket
/// occurrences demoted to plain during conversion (info), `PSV004` no
/// character-level nesting inferred — the automaton is finite-state (info).
///
/// Pass the [`ReinferReport`] of a tokenizer-repair run when one happened;
/// the stats card records whether re-inference was applied either way.
#[must_use]
pub fn analyze_passive(result: &PassiveResult, reinfer: Option<&ReinferReport>) -> AnalysisReport {
    let mut report = AnalysisReport::new("passive");
    report.absorb(analyze_vpg(&result.automaton.vpg), "grammar");

    let stats = &result.automaton.stats;
    let reinfer_note = match reinfer {
        Some(r) => format!(
            "yes ({} rejected member(s), tokenizer {}, {} -> {} pair(s))",
            r.rejected_members,
            if r.tokenizer_changed { "changed" } else { "kept" },
            r.pairs_before,
            r.pairs_after,
        ),
        None => "no".to_string(),
    };
    report.push(
        "PSV000",
        Severity::Info,
        "stats",
        format!(
            "passively learned grammar: corpus of {} word(s), {} merged state(s) \
             ({} unmerged), {} inferred pair(s), {} plain character(s), \
             re-inference applied: {}",
            stats.corpus_size,
            stats.merged_states,
            stats.tree_states,
            result.pairs.len(),
            stats.plain_alphabet,
            reinfer_note,
        ),
    );

    let expected = stats.corpus_size - stats.skipped_ill_matched;
    if stats.train_accepted != expected {
        report.push(
            "PSV001",
            Severity::Error,
            "consistency",
            format!(
                "merged automaton accepts {} of {} well-matched training word(s) — \
                 the construction's consistency guarantee is broken",
                stats.train_accepted, expected,
            ),
        );
    }
    if stats.skipped_ill_matched > 0 {
        report.push(
            "PSV002",
            Severity::Warn,
            "conversion",
            format!(
                "{} corpus word(s) skipped as ill-matched under the tagging; \
                 the passive converter always produces well-matched words, so \
                 these were converted by something else",
                stats.skipped_ill_matched,
            ),
        );
    }
    if result.demoted_occurrences > 0 {
        report.push(
            "PSV003",
            Severity::Info,
            "conversion",
            format!(
                "{} bracket occurrence(s) demoted to plain (unmatched under \
                 strict LIFO pairing — string-literal noise or corpus typos)",
                result.demoted_occurrences,
            ),
        );
    }
    if result.pairs.is_empty() && stats.corpus_size > 0 {
        report.push(
            "PSV004",
            Severity::Info,
            "structure",
            "no character-level nesting inferred from the corpus; the \
             hypothesis degenerates to a finite-state language",
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use vstar_passive::{learn_passive, PassiveConfig};

    use super::*;

    fn bracket_result() -> PassiveResult {
        let corpus: Vec<String> =
            ["(a)", "((a)b)", "(ab)", "(a(b))"].iter().map(|s| (*s).to_string()).collect();
        learn_passive(&corpus, &PassiveConfig::default())
    }

    #[test]
    fn stats_card_is_always_emitted() {
        let report = analyze_passive(&bracket_result(), None);
        assert!(report.has("PSV000"));
        let card = report.diagnostics.iter().find(|d| d.code == "PSV000").unwrap();
        assert!(card.message.contains("corpus of 4 word(s)"));
        assert!(card.message.contains("re-inference applied: no"));
    }

    #[test]
    fn consistent_construction_has_no_consistency_error() {
        let report = analyze_passive(&bracket_result(), None);
        assert!(!report.has("PSV001"));
        assert!(report.is_clean(Severity::Error));
    }

    #[test]
    fn reinfer_report_shows_up_on_the_card() {
        let reinfer = ReinferReport {
            rejected_members: 3,
            ill_matched: 0,
            tokenizer_changed: true,
            pairs_before: 1,
            pairs_after: 2,
        };
        let report = analyze_passive(&bracket_result(), Some(&reinfer));
        let card = report.diagnostics.iter().find(|d| d.code == "PSV000").unwrap();
        assert!(card.message.contains("re-inference applied: yes"));
        assert!(card.message.contains("3 rejected member(s)"));
        assert!(card.message.contains("tokenizer changed"));
    }

    #[test]
    fn demotion_and_degeneration_findings_fire() {
        let noisy: Vec<String> = [
            "{\"a\":1}",
            "{\"a\":{\"b\":[1,2]}}",
            "{}",
            "{\"x\":[{\"y\":0}]}",
            "{\"k\":[]}",
            "{\"n\":{\"m\":7}}",
            "{\"p\":[0]}",
            "{\"q\":{\"r\":[5,6]}}",
            "{\"s\":8}",
            "{\"a\":\"}\"}",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let report = analyze_passive(&learn_passive(&noisy, &PassiveConfig::default()), None);
        assert!(report.has("PSV003"));
        assert!(!report.has("PSV004"));

        let flat: Vec<String> = ["ab", "abab"].iter().map(|s| (*s).to_string()).collect();
        let report = analyze_passive(&learn_passive(&flat, &PassiveConfig::default()), None);
        assert!(report.has("PSV004"));
        assert!(!report.has("PSV003"));
    }
}
