//! Lint passes over deterministic partial VPAs (paper §3.3).
//!
//! Nondeterminism and kind violations are impossible by construction
//! ([`vstar_vpl::VpaBuilder`] rejects them), so the automaton layer lints
//! target what the builder cannot see: structure no run ever touches (dead
//! states, unpushed or unpopped stack symbols), an empty language, return
//! transitions that cross tagging pairs — the exact shape of the PR 5 learner
//! bug — and the deliberate partiality of the transition tables, summarized
//! rather than judged.

use std::collections::BTreeSet;

use vstar_vpl::{StackSymId, StateId, Vpa};

use crate::report::{AnalysisReport, Severity};

/// Runs every VPA lint and returns the findings.
///
/// Codes: `VPA001` unreachable state (warn), `VPA002` stack symbol never
/// pushed (warn), `VPA003` stack symbol pushed but never popped (info),
/// `VPA004` cross-pair return transition (info — learned token-mode automata
/// legitimately contain them in quantity, mirroring the grammar-side
/// `VPG003` calibration; the message still distinguishes live from dead
/// crossings), `VPA005` no reachable accepting state (error), `VPA006`
/// bottom-return transitions present (info), `VPA007` transition-table
/// coverage summary (info).
#[must_use]
pub fn analyze_vpa(vpa: &Vpa) -> AnalysisReport {
    let mut report = AnalysisReport::new("vpa");
    let reachable = reachable_states(vpa);
    let coreachable = coreachable_states(vpa);

    report.push_each_capped(
        "VPA001",
        Severity::Warn,
        (0..vpa.state_count()).map(StateId).filter(|q| !reachable.contains(q)).map(|q| {
            (
                format!("state/{q}"),
                "unreachable from the initial state; no run ever enters it".to_string(),
            )
        }),
        "states",
    );

    let mut pushed: Vec<BTreeSet<char>> = vec![BTreeSet::new(); vpa.stack_symbol_count()];
    let mut pushed_reachably = vec![false; vpa.stack_symbol_count()];
    for (p, a, _, gamma) in vpa.call_transitions() {
        pushed[gamma.0].insert(a);
        if reachable.contains(&p) {
            pushed_reachably[gamma.0] = true;
        }
    }
    let mut popped = vec![false; vpa.stack_symbol_count()];
    for (_, _, gamma, _) in vpa.return_transitions() {
        popped[gamma.0] = true;
    }
    report.push_each_capped(
        "VPA002",
        Severity::Warn,
        (0..vpa.stack_symbol_count()).filter(|&sym| pushed[sym].is_empty()).map(|sym| {
            (
                format!("stack-symbol/{sym}"),
                "declared but never pushed by any call transition".to_string(),
            )
        }),
        "stack-symbols",
    );
    report.push_each_capped(
        "VPA003",
        Severity::Info,
        (0..vpa.stack_symbol_count()).filter(|&sym| !pushed[sym].is_empty() && !popped[sym]).map(
            |sym| {
                (
                    format!("stack-symbol/{sym}"),
                    "pushed but never popped: every level opened with it gets stuck".to_string(),
                )
            },
        ),
        "stack-symbols",
    );

    report.push_each_capped(
        "VPA004",
        Severity::Info,
        vpa.return_transitions().filter_map(|(q1, b, gamma, p2)| {
            let pushers = &pushed[gamma.0];
            if pushers.is_empty() {
                return None; // already VPA002: there is no pair to cross.
            }
            let crosses = pushers.iter().all(|&a| vpa.tagging().matching_return(a) != Some(b));
            if !crosses {
                return None;
            }
            let live =
                reachable.contains(&q1) && pushed_reachably[gamma.0] && coreachable.contains(&p2);
            Some((
                format!("return/{q1}/{b}/g{}", gamma.0),
                format!(
                    "pops a symbol pushed only by {pushers:?} with the cross-pair return {b:?}{}",
                    if live { "; the transition is on a live accepting path" } else { " (dead)" }
                ),
            ))
        }),
        "returns",
    );

    if !vpa.accepting().iter().any(|q| reachable.contains(q)) {
        report.push(
            "VPA005",
            Severity::Error,
            "accepting",
            "no accepting state is reachable: the language is empty",
        );
    }

    let bottom: Vec<_> = vpa.bottom_return_transitions().collect();
    if !bottom.is_empty() {
        report.push(
            "VPA006",
            Severity::Info,
            "return-on-empty",
            format!(
                "{} return-on-empty-stack transition(s) present; well-matched acceptance never \
                 exercises them",
                bottom.len()
            ),
        );
    }

    let tagging = vpa.tagging();
    let n = vpa.state_count();
    let call_cells = n * tagging.call_symbols().count();
    let ret_cells = n * tagging.return_symbols().count() * vpa.stack_symbol_count();
    let call_defined = vpa.call_transitions().count();
    let ret_defined = vpa.return_transitions().count();
    report.push(
        "VPA007",
        Severity::Info,
        "tables",
        format!(
            "partial transition coverage: {call_defined}/{call_cells} call cells, \
             {ret_defined}/{ret_cells} return cells defined (missing cells reject)"
        ),
    );

    report
}

/// States reachable from the initial state, over-approximating the stack (any
/// symbol pushed from a reachable state is considered poppable anywhere).
///
/// The reachable-state set and the pushable-symbol set grow each other —
/// newly reachable states push new symbols, and a grown symbol set enables
/// return transitions out of states visited *earlier* — so the iteration must
/// re-sweep every transition until neither set changes, not just drain a
/// one-shot worklist.
pub(crate) fn reachable_states(vpa: &Vpa) -> BTreeSet<StateId> {
    let mut reachable = BTreeSet::new();
    reachable.insert(vpa.initial());
    let mut pushable: BTreeSet<StackSymId> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for (p, _, t) in vpa.plain_transitions() {
            if reachable.contains(&p) && reachable.insert(t) {
                changed = true;
            }
        }
        for (p, _, t, g) in vpa.call_transitions() {
            if reachable.contains(&p) {
                changed |= reachable.insert(t);
                changed |= pushable.insert(g);
            }
        }
        for (p, _, g, t) in vpa.return_transitions() {
            if reachable.contains(&p) && pushable.contains(&g) && reachable.insert(t) {
                changed = true;
            }
        }
        for (p, _, t) in vpa.bottom_return_transitions() {
            if reachable.contains(&p) && reachable.insert(t) {
                changed = true;
            }
        }
    }
    reachable
}

/// States from which some accepting state is reachable (same stack
/// over-approximation as [`reachable_states`], edges reversed).
fn coreachable_states(vpa: &Vpa) -> BTreeSet<StateId> {
    let mut coreachable: BTreeSet<StateId> = vpa.accepting().iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        let step = |from: StateId, to: StateId, coreachable: &mut BTreeSet<StateId>| {
            if coreachable.contains(&to) && coreachable.insert(from) {
                return true;
            }
            false
        };
        for (p, _, t) in vpa.plain_transitions() {
            changed |= step(p, t, &mut coreachable);
        }
        for (p, _, t, _) in vpa.call_transitions() {
            changed |= step(p, t, &mut coreachable);
        }
        for (p, _, _, t) in vpa.return_transitions() {
            changed |= step(p, t, &mut coreachable);
        }
        for (p, _, t) in vpa.bottom_return_transitions() {
            changed |= step(p, t, &mut coreachable);
        }
    }
    coreachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::{Tagging, VpaBuilder};

    fn dyck_vpa() -> Vpa {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let g = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.call(q0, '(', q0, g).unwrap();
        b.ret(q0, ')', g, q0).unwrap();
        b.plain(q0, 'x', q0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dyck_is_clean() {
        let report = analyze_vpa(&dyck_vpa());
        assert!(report.is_clean(Severity::Warn), "{:?}", report.diagnostics);
        assert!(report.has("VPA007")); // the coverage summary is always there
    }

    #[test]
    fn dead_structure_is_flagged() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let dead = b.add_state();
        let g = b.add_stack_symbol();
        let unpushed = b.add_stack_symbol();
        let unpopped = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.call(q0, '(', q0, g).unwrap();
        b.ret(q0, ')', g, q0).unwrap();
        b.ret(dead, ')', unpushed, dead).unwrap();
        b.call(dead, '(', dead, unpopped).unwrap();
        let vpa = b.build().unwrap();
        let report = analyze_vpa(&vpa);
        assert!(report.has("VPA001"), "{:?}", report.diagnostics);
        assert!(report.has("VPA002"), "{:?}", report.diagnostics);
        assert!(report.has("VPA003"), "{:?}", report.diagnostics);
    }

    #[test]
    fn cross_pair_returns_are_flagged_live_and_dead() {
        let tagging = Tagging::from_pairs([('a', 'b'), ('c', 'd')]).unwrap();
        let mut bld = VpaBuilder::new(tagging);
        let q0 = bld.add_state();
        let q1 = bld.add_state();
        let qf = bld.add_state();
        let ga = bld.add_stack_symbol();
        bld.set_initial(q0);
        bld.add_accepting(qf);
        bld.call(q0, 'a', q1, ga).unwrap();
        bld.plain(q1, 'x', q1).unwrap();
        // The crossing return: γ pushed by 'a' popped by 'd'.
        bld.ret(q1, 'd', ga, qf).unwrap();
        let vpa = bld.build().unwrap();
        assert!(vpa.accepts("axd"));
        let report = analyze_vpa(&vpa);
        let cross: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "VPA004").collect();
        assert_eq!(cross.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(cross[0].severity, Severity::Info);
        assert!(cross[0].message.contains("live accepting path"), "{}", cross[0].message);
    }

    #[test]
    fn returns_enabled_by_later_pushes_are_reached() {
        // q1's return pops a symbol that only becomes pushable once q1 itself
        // is reachable — a one-shot worklist that freezes the pushable set
        // early misses q2/qf and mis-reports an empty language (the learned
        // xml automaton has exactly this shape).
        let tagging = Tagging::from_pairs([('a', 'b')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let qf = b.add_state();
        let g0 = b.add_stack_symbol();
        let g1 = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(qf);
        b.call(q0, 'a', q1, g0).unwrap();
        b.call(q1, 'a', q1, g1).unwrap();
        b.ret(q1, 'b', g1, q2).unwrap();
        b.ret(q2, 'b', g0, qf).unwrap();
        let vpa = b.build().unwrap();
        assert!(vpa.accepts("aabb"));
        let report = analyze_vpa(&vpa);
        assert!(!report.has("VPA001"), "{:?}", report.diagnostics);
        assert!(!report.has("VPA005"), "{:?}", report.diagnostics);
    }

    #[test]
    fn empty_language_is_an_error() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let island = b.add_state();
        b.set_initial(q0);
        b.add_accepting(island); // accepting but unreachable
        b.plain(q0, 'x', q0).unwrap();
        let vpa = b.build().unwrap();
        let report = analyze_vpa(&vpa);
        assert!(report.has("VPA005"));
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn bottom_returns_are_reported_as_info() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.ret_on_empty(q0, ')', q0).unwrap();
        let vpa = b.build().unwrap();
        let report = analyze_vpa(&vpa);
        assert!(report.has("VPA006"));
        let d = report.diagnostics.iter().find(|d| d.code == "VPA006").unwrap();
        assert_eq!(d.severity, Severity::Info);
    }
}
