//! Lint passes over well-matched VPGs (paper Definition 3.1).
//!
//! The grammar layer is where learned-language defects are easiest to read
//! off: a nonterminal nobody derives, a rule that can never terminate, a
//! matching rule whose call and return belong to different tagging pairs (the
//! grammar-side shadow of the PR 5 cross-pair learner bug), or a start symbol
//! with no productive alternative at all.

use std::collections::BTreeSet;

use vstar_vpl::{NonterminalId, RuleRhs, Vpg};

use crate::report::{AnalysisReport, Severity};

/// Runs every VPG lint and returns the findings.
///
/// Codes: `VPG001` unreachable nonterminal (info — extraction from a learned
/// automaton routinely leaves a few), `VPG002` unproductive nonterminal
/// (warn), `VPG003` cross-pair matching rule (info — see below), `VPG004`
/// empty language (error).
///
/// `VPG003` is informational by empirical calibration: grammars extracted
/// from learned token-mode automata legitimately contain thousands of
/// cross-pair matching rules (the oracle language itself pairs the tokens of
/// different pairs positionally), so crossing alone is not a defect marker.
/// An *injected* crossing is still caught — statically by the
/// grammar-vs-automaton extraction-equality lint (`LRN001`, error) when the
/// grammar was tampered with, and dynamically by the differential fuzz gates.
#[must_use]
pub fn analyze_vpg(vpg: &Vpg) -> AnalysisReport {
    let mut report = AnalysisReport::new("vpg");
    let reachable = reachable_nonterminals(vpg);
    let min_lengths = vpg.min_lengths();

    let nts = || (0..vpg.nonterminal_count()).map(NonterminalId);
    report.push_each_capped(
        "VPG001",
        Severity::Info,
        nts().filter(|nt| !reachable.contains(nt)).map(|nt| {
            (
                format!("nonterminal/{}", vpg.name(nt)),
                "unreachable from the start symbol; no derivation ever uses its rules".to_string(),
            )
        }),
        "nonterminals",
    );
    report.push_each_capped(
        "VPG002",
        Severity::Warn,
        nts().filter(|nt| min_lengths[nt.0].is_none()).map(|nt| {
            (
                format!("nonterminal/{}", vpg.name(nt)),
                "unproductive: no finite derivation from it terminates".to_string(),
            )
        }),
        "nonterminals",
    );

    report.push_each_capped(
        "VPG003",
        Severity::Info,
        vpg.rules().filter_map(|(lhs, rhs)| {
            let RuleRhs::Match { call, ret, .. } = rhs else { return None };
            let expected = vpg.tagging().matching_return(call);
            if expected == Some(ret) {
                return None;
            }
            Some((
                format!("rule/{}", vpg.name(lhs)),
                format!(
                    "matching rule pairs call {call:?} with return {ret:?}, but the tagging \
                     pairs it with {expected:?}: the grammar derives cross-pair nesting"
                ),
            ))
        }),
        "rules",
    );

    if min_lengths[vpg.start().0].is_none() {
        report.push(
            "VPG004",
            Severity::Error,
            format!("start/{}", vpg.name(vpg.start())),
            "the start symbol derives no terminal string: the language is empty",
        );
    }

    report
}

/// Nonterminals reachable from the start symbol through any rule.
fn reachable_nonterminals(vpg: &Vpg) -> BTreeSet<NonterminalId> {
    let mut reachable = BTreeSet::new();
    let mut work = vec![vpg.start()];
    reachable.insert(vpg.start());
    while let Some(nt) = work.pop() {
        for rhs in vpg.alternatives(nt) {
            let successors: &[NonterminalId] = match *rhs {
                RuleRhs::Empty => &[],
                RuleRhs::Linear { next, .. } => &[next],
                RuleRhs::Match { inner, next, .. } => &[inner, next],
            };
            for &succ in successors {
                if reachable.insert(succ) {
                    work.push(succ);
                }
            }
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::grammar::figure1_grammar;
    use vstar_vpl::{Tagging, VpgBuilder};

    #[test]
    fn figure1_is_clean() {
        let report = analyze_vpg(&figure1_grammar());
        assert!(report.is_clean(Severity::Warn), "{:?}", report.diagnostics);
    }

    #[test]
    fn unreachable_and_unproductive_nonterminals_are_flagged() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        let orphan = b.nonterminal("Orphan");
        let loopy = b.nonterminal("Loop");
        b.empty_rule(s);
        b.linear_rule(s, 'x', loopy);
        b.empty_rule(orphan);
        b.linear_rule(loopy, 'x', loopy); // productive never: only self-loops
        let g = b.build(s).unwrap();
        let report = analyze_vpg(&g);
        assert!(report.has("VPG001"), "{:?}", report.diagnostics);
        assert!(report.has("VPG002"), "{:?}", report.diagnostics);
        assert!(!report.has("VPG004"));
    }

    #[test]
    fn cross_pair_match_rules_are_flagged() {
        let tagging = Tagging::from_pairs([('(', ')'), ('[', ']')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.empty_rule(s);
        b.match_rule(s, '(', s, ']', s); // crosses the pairs
        let g = b.build(s).unwrap();
        let report = analyze_vpg(&g);
        assert!(report.has("VPG003"), "{:?}", report.diagnostics);
        // Calibrated as informational: genuine learned grammars cross pairs.
        assert_eq!(report.count(Severity::Info), 1);
        assert!(report.is_clean(Severity::Warn));
    }

    #[test]
    fn empty_language_is_an_error() {
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpgBuilder::new(tagging);
        let s = b.nonterminal("S");
        b.linear_rule(s, 'x', s); // no terminating alternative anywhere
        let g = b.build(s).unwrap();
        let report = analyze_vpg(&g);
        assert!(report.has("VPG004"));
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }
}
