//! The diagnostics data model: severities, diagnostics and analysis reports.
//!
//! Every lint pass in this crate reports through these types, so downstream
//! consumers (the `analyze` bench binary, CI gates, tests) can treat all
//! passes uniformly: filter by [`Severity`], look up [`Diagnostic::code`]s in
//! the registry table of the README, and serialize whole reports into
//! machine-readable JSON via `serde`.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Serialize, Value};

/// How many findings of one code a mass lint lists individually before
/// switching to an explicit remainder count
/// ([`AnalysisReport::push_each_capped`]).
pub const MAX_FINDINGS_PER_CODE: usize = 8;

/// How bad a finding is.
///
/// Ordered: `Info < Warn < Error`, so severity thresholds compare naturally
/// ([`AnalysisReport::is_clean`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A structural observation, not a defect (headroom metrics, allowed but
    /// never-exercised constructs).
    Info,
    /// A suspicious construct that a healthy learned artifact should not
    /// contain (dead structure, cross-pair discipline violations).
    Warn,
    /// A defect: the artifact is inconsistent or useless (empty language,
    /// grammar/automaton disagreement, out-of-bounds tables).
    Error,
}

impl Severity {
    /// The lowercase label used in reports and messages.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// The vendored serde derive is struct-only; render the enum by hand.
impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// One finding of a lint pass.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Stable machine-readable code (`VPG001`, `VPA004`, …); the registry
    /// lives in the README's "Analyzing learned grammars" table.
    pub code: &'static str,
    /// How bad the finding is.
    pub severity: Severity,
    /// Where in the artifact the finding sits (a nonterminal, state, stack
    /// symbol, table cell, …), as a human-readable path.
    pub location: String,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}: {}", self.severity, self.code, self.location, self.message)
    }
}

/// Every finding of one analysis run over one artifact.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AnalysisReport {
    /// What was analyzed (`"vpg"`, `"vpa"`, `"learned"`, `"compiled"`).
    pub subject: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report for `subject`.
    #[must_use]
    pub fn new(subject: impl Into<String>) -> Self {
        AnalysisReport { subject: subject.into(), diagnostics: Vec::new() }
    }

    /// Records one finding.
    pub fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            location: location.into(),
            message: message.into(),
        });
    }

    /// Records a batch of same-code findings, listing at most
    /// [`MAX_FINDINGS_PER_CODE`] individually and compressing the rest into
    /// one explicit remainder finding (no silent truncation: the remainder
    /// count is part of the report). Mass lints over learned artifacts use
    /// this — a single extracted grammar can trip the same lint thousands of
    /// times, which would drown the report and bloat the tracked JSON.
    pub fn push_each_capped(
        &mut self,
        code: &'static str,
        severity: Severity,
        findings: impl IntoIterator<Item = (String, String)>,
        summary_location: &str,
    ) {
        let mut beyond_cap = 0usize;
        for (n, (location, message)) in findings.into_iter().enumerate() {
            if n < MAX_FINDINGS_PER_CODE {
                self.push(code, severity, location, message);
            } else {
                beyond_cap += 1;
            }
        }
        if beyond_cap > 0 {
            self.push(
                code,
                severity,
                summary_location.to_string(),
                format!("… and {beyond_cap} more finding(s) of this kind (list truncated)"),
            );
        }
    }

    /// Absorbs another report's findings, prefixing their locations with
    /// `prefix/` so component findings stay attributable in a combined
    /// report.
    pub fn absorb(&mut self, other: AnalysisReport, prefix: &str) {
        for mut d in other.diagnostics {
            d.location = format!("{prefix}/{}", d.location);
            self.diagnostics.push(d);
        }
    }

    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// The worst severity present, or `None` for a finding-free report.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// `true` when no finding reaches `threshold` (e.g.
    /// `is_clean(Severity::Warn)`: no warnings and no errors).
    #[must_use]
    pub fn is_clean(&self, threshold: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < threshold)
    }

    /// `true` when at least one finding carries `code`.
    #[must_use]
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes present, sorted.
    #[must_use]
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// The findings at or above `threshold`, for failure summaries.
    #[must_use]
    pub fn at_least(&self, threshold: Severity) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity >= threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.to_string(), "warn");
        assert_eq!(Severity::Error.to_value(), Value::Str("error".into()));
    }

    #[test]
    fn report_accounting() {
        let mut r = AnalysisReport::new("vpg");
        assert!(r.is_clean(Severity::Info));
        assert_eq!(r.max_severity(), None);
        r.push("VPG001", Severity::Warn, "nt/3", "unreachable");
        r.push("VPG004", Severity::Error, "start", "empty language");
        r.push("CNG001", Severity::Info, "states", "2 mergeable");
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(!r.is_clean(Severity::Error));
        assert!(r.has("VPG004"));
        assert!(!r.has("VPA001"));
        assert_eq!(r.at_least(Severity::Warn).len(), 2);
        assert_eq!(r.codes().len(), 3);

        let mut combined = AnalysisReport::new("learned");
        combined.absorb(r, "grammar");
        assert_eq!(combined.diagnostics[0].location, "grammar/nt/3");
    }

    #[test]
    fn capped_batches_keep_an_explicit_remainder() {
        let mut r = AnalysisReport::new("vpg");
        r.push_each_capped(
            "VPG003",
            Severity::Info,
            (0..20).map(|i| (format!("rule/{i}"), "crossing".to_string())),
            "rules",
        );
        assert_eq!(r.diagnostics.len(), MAX_FINDINGS_PER_CODE + 1);
        let last = r.diagnostics.last().unwrap();
        assert_eq!(last.location, "rules");
        assert!(last.message.contains("12 more"), "{}", last.message);

        let mut small = AnalysisReport::new("vpg");
        small.push_each_capped(
            "VPG001",
            Severity::Info,
            (0..3).map(|i| (format!("nt/{i}"), "dead".to_string())),
            "nts",
        );
        assert_eq!(small.diagnostics.len(), 3);
        assert!(small.diagnostics.iter().all(|d| !d.message.contains("truncated")));
    }

    #[test]
    fn diagnostics_render_with_code_and_location() {
        let d = Diagnostic {
            code: "VPA004",
            severity: Severity::Warn,
            location: "ret/q1".into(),
            message: "cross-pair return".into(),
        };
        assert_eq!(d.to_string(), "warn [VPA004] ret/q1: cross-pair return");
    }
}
