//! Behavioral congruence report: how many states and stack symbols a learned
//! VPA could merge without changing any transition outcome.
//!
//! The learner (paper §5) produces one state per observation-table row and one
//! stack symbol per distinguished call context, which is often far more than
//! the language needs — the refined `json` automaton carries hundreds of
//! states. This pass runs a joint partition refinement over states and stack
//! symbols: states start split by acceptance and are separated whenever their
//! transition rows differ *up to the current classes*; stack symbols start
//! unified and are separated whenever their return behavior differs over state
//! classes. At the fixpoint, members of one class are behaviorally
//! interchangeable under the class-keyed view of the tables.
//!
//! The merge counts are a headroom **estimate**, not a proven-safe merge set:
//! with partial tables, agreeing on class-keyed rows does not always imply
//! agreeing per raw symbol, so a true bisimulation check could keep slightly
//! more states apart. The report therefore stays at [`Severity::Info`] — it
//! points at the ROADMAP state-reduction item, it does not gate anything.

use std::collections::BTreeMap;

use serde::Serialize;
use vstar_vpl::Vpa;

use crate::report::{AnalysisReport, Severity};

/// How many per-class diagnostics [`analyze_congruence`] emits before
/// summarizing the remainder in a single `+k more` finding.
const MAX_CLASS_DIAGNOSTICS: usize = 16;

/// The merge-headroom numbers of one congruence analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct CongruenceSummary {
    /// Total states in the automaton.
    pub states: usize,
    /// Behavioral state classes at the fixpoint.
    pub state_classes: usize,
    /// States that could fold into a representative (`states - state_classes`).
    pub mergeable_states: usize,
    /// Total stack symbols in the automaton.
    pub stack_symbols: usize,
    /// Behavioral stack-symbol classes at the fixpoint.
    pub stack_symbol_classes: usize,
    /// Stack symbols that could fold into a representative.
    pub mergeable_stack_symbols: usize,
}

/// Computes the joint state/stack-symbol congruence and reports multi-member
/// classes as `CNG001` (states) and `CNG002` (stack symbols) info findings.
#[must_use]
pub fn analyze_congruence(vpa: &Vpa) -> AnalysisReport {
    let (summary, state_class, sym_class) = congruence(vpa);
    let mut report = AnalysisReport::new("congruence");

    push_class_findings(&mut report, "CNG001", "state", &state_class);
    push_class_findings(&mut report, "CNG002", "stack-symbol", &sym_class);

    report.push(
        "CNG000",
        Severity::Info,
        "summary",
        format!(
            "{} states fall into {} behavioral classes ({} mergeable); \
             {} stack symbols into {} classes ({} mergeable)",
            summary.states,
            summary.state_classes,
            summary.mergeable_states,
            summary.stack_symbols,
            summary.stack_symbol_classes,
            summary.mergeable_stack_symbols
        ),
    );
    report
}

/// Computes just the [`CongruenceSummary`] (used by the bench binary).
#[must_use]
pub fn congruence_summary(vpa: &Vpa) -> CongruenceSummary {
    congruence(vpa).0
}

fn push_class_findings(
    report: &mut AnalysisReport,
    code: &'static str,
    what: &str,
    classes: &[usize],
) {
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (id, &class) in classes.iter().enumerate() {
        members.entry(class).or_default().push(id);
    }
    let multi: Vec<&Vec<usize>> = members.values().filter(|m| m.len() > 1).collect();
    for group in multi.iter().take(MAX_CLASS_DIAGNOSTICS) {
        report.push(
            code,
            Severity::Info,
            format!("{what}-class/{}", group[0]),
            format!("{} behaviorally equivalent {what}s: {:?}", group.len(), group),
        );
    }
    if multi.len() > MAX_CLASS_DIAGNOSTICS {
        report.push(
            code,
            Severity::Info,
            format!("{what}-class/more"),
            format!(
                "+{} more mergeable {what} classes (capped)",
                multi.len() - MAX_CLASS_DIAGNOSTICS
            ),
        );
    }
}

/// Runs the joint refinement; returns the summary plus the per-state and
/// per-symbol class assignments (class ids are the smallest member's index).
fn congruence(vpa: &Vpa) -> (CongruenceSummary, Vec<usize>, Vec<usize>) {
    let n = vpa.state_count();
    let m = vpa.stack_symbol_count();

    // Initial split: states by acceptance, symbols all together.
    let mut state_class: Vec<usize> =
        (0..n).map(|q| usize::from(vpa.is_accepting(vstar_vpl::StateId(q)))).collect();
    let mut sym_class: Vec<usize> = vec![0; m];

    loop {
        let next_states = split(n, |q| state_signature(vpa, q, &state_class, &sym_class));
        let next_syms = split(m, |g| symbol_signature(vpa, g, &state_class));
        let stable = canonical(&next_states) == canonical(&state_class)
            && canonical(&next_syms) == canonical(&sym_class);
        state_class = next_states;
        sym_class = next_syms;
        if stable {
            break;
        }
    }

    let state_classes = distinct(&state_class);
    let sym_classes = distinct(&sym_class);
    let summary = CongruenceSummary {
        states: n,
        state_classes,
        mergeable_states: n - state_classes,
        stack_symbols: m,
        stack_symbol_classes: sym_classes,
        mergeable_stack_symbols: m - sym_classes,
    };
    (summary, state_class, sym_class)
}

/// One state's transition row with targets and pushed symbols replaced by
/// their current class ids. `accepting` keeps the initial split stable.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct StateSig {
    accepting: bool,
    plain: BTreeMap<char, usize>,
    call: BTreeMap<char, (usize, usize)>,
    ret: BTreeMap<(char, usize), usize>,
    ret_bottom: BTreeMap<char, usize>,
}

fn state_signature(vpa: &Vpa, q: usize, state_class: &[usize], sym_class: &[usize]) -> StateSig {
    let q = vstar_vpl::StateId(q);
    let mut sig = StateSig {
        accepting: vpa.is_accepting(q),
        plain: BTreeMap::new(),
        call: BTreeMap::new(),
        ret: BTreeMap::new(),
        ret_bottom: BTreeMap::new(),
    };
    for (p, c, t) in vpa.plain_transitions() {
        if p == q {
            sig.plain.insert(c, state_class[t.0]);
        }
    }
    for (p, c, t, g) in vpa.call_transitions() {
        if p == q {
            sig.call.insert(c, (state_class[t.0], sym_class[g.0]));
        }
    }
    for (p, c, g, t) in vpa.return_transitions() {
        if p == q {
            // Class-keyed: distinct raw symbols in one class must agree for
            // the merge to be exact; insert keeps the first, which is why the
            // result is an estimate (see module docs).
            sig.ret.entry((c, sym_class[g.0])).or_insert(state_class[t.0]);
        }
    }
    for (p, c, t) in vpa.bottom_return_transitions() {
        if p == q {
            sig.ret_bottom.insert(c, state_class[t.0]);
        }
    }
    sig
}

/// One stack symbol's return behavior over state classes: who pops it where.
fn symbol_signature(vpa: &Vpa, g: usize, state_class: &[usize]) -> BTreeMap<(usize, char), usize> {
    let mut sig = BTreeMap::new();
    for (q, c, gamma, t) in vpa.return_transitions() {
        if gamma.0 == g {
            sig.entry((state_class[q.0], c)).or_insert(state_class[t.0]);
        }
    }
    sig
}

/// Regroups `0..n` by signature, returning new class ids (smallest member).
fn split<S: Ord>(n: usize, sig: impl Fn(usize) -> S) -> Vec<usize> {
    let mut groups: BTreeMap<S, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        groups.entry(sig(i)).or_default().push(i);
    }
    let mut class = vec![0; n];
    for members in groups.values() {
        for &i in members {
            class[i] = members[0];
        }
    }
    class
}

/// Canonical renumbering in first-occurrence order, so two assignments compare
/// equal iff they induce the same partition.
fn canonical(classes: &[usize]) -> Vec<usize> {
    let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
    classes
        .iter()
        .map(|&c| {
            let fresh = seen.len();
            *seen.entry(c).or_insert(fresh)
        })
        .collect()
}

fn distinct(classes: &[usize]) -> usize {
    classes.iter().collect::<std::collections::BTreeSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstar_vpl::{Tagging, VpaBuilder};

    #[test]
    fn duplicated_states_and_symbols_are_mergeable() {
        // Two copies of the same Dyck loop, reachable on different calls but
        // behaviorally identical, plus two interchangeable stack symbols.
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let g0 = b.add_stack_symbol();
        let g1 = b.add_stack_symbol();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.add_accepting(q1);
        b.call(q0, '(', q1, g0).unwrap();
        b.call(q1, '(', q0, g1).unwrap();
        b.ret(q0, ')', g0, q0).unwrap();
        b.ret(q0, ')', g1, q0).unwrap();
        b.ret(q1, ')', g0, q1).unwrap();
        b.ret(q1, ')', g1, q1).unwrap();
        let vpa = b.build().unwrap();

        let summary = congruence_summary(&vpa);
        assert_eq!(summary.states, 2);
        assert_eq!(summary.stack_symbols, 2);
        assert_eq!(summary.stack_symbol_classes, 1, "{summary:?}");
        assert_eq!(summary.mergeable_stack_symbols, 1);
        // With the symbols merged the two states have identical rows.
        assert_eq!(summary.state_classes, 1, "{summary:?}");

        let report = analyze_congruence(&vpa);
        assert!(report.has("CNG000"));
        assert!(report.has("CNG001"));
        assert!(report.has("CNG002"));
        assert_eq!(report.max_severity(), Some(Severity::Info));
    }

    #[test]
    fn distinguishable_states_stay_apart() {
        // q0 accepts, q1 does not; a plain 'x' toggles between them.
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.plain(q0, 'x', q1).unwrap();
        b.plain(q1, 'x', q0).unwrap();
        let vpa = b.build().unwrap();
        let summary = congruence_summary(&vpa);
        assert_eq!(summary.state_classes, 2);
        assert_eq!(summary.mergeable_states, 0);
        let report = analyze_congruence(&vpa);
        assert!(!report.has("CNG001"));
    }

    #[test]
    fn refinement_propagates_through_successors() {
        // q1 and q2 both reject, but q1 steps to an accepting state and q2 to
        // a rejecting one — the second round must separate them.
        let tagging = Tagging::from_pairs([('(', ')')]).unwrap();
        let mut b = VpaBuilder::new(tagging);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let q3 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q0);
        b.plain(q1, 'x', q0).unwrap();
        b.plain(q2, 'x', q3).unwrap();
        b.plain(q0, 'y', q1).unwrap();
        b.plain(q3, 'y', q2).unwrap();
        let vpa = b.build().unwrap();
        let summary = congruence_summary(&vpa);
        assert_eq!(summary.state_classes, 4, "{summary:?}");
    }
}
