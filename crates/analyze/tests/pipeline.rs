//! Pipeline property: whatever the learn → refine pipeline produces, the
//! static analyzer reports no error-severity finding on it. Errors are
//! reserved for artifacts the pipeline cannot emit (inconsistent pairings,
//! empty languages, broken tables) — if this property fails, either the
//! pipeline produced a genuinely broken artifact or an error lint is
//! miscalibrated; both need a human.

use proptest::prelude::*;

use vstar::equivalence::TestPoolConfig;
use vstar::{CorpusEvidence, Mat, RefineConfig, VStar, VStarConfig};
use vstar_analyze::{Analyze, Severity};
use vstar_parser::CompileLearned;

fn dyck(s: &str) -> bool {
    let mut depth = 0i64;
    for c in s.chars() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            'x' => {}
            _ => return false,
        }
        if depth < 0 {
            return false;
        }
    }
    depth == 0
}

fn dyck_even(s: &str) -> bool {
    dyck(s) && s.chars().filter(|&c| c == 'x').count() % 2 == 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Learn with a seed-dependent (sometimes deliberately weak) test pool,
    /// refine against a held-out corpus, and lint everything that comes out.
    #[test]
    fn refined_pipeline_output_never_lints_at_error(seed in 0u64..1000) {
        let parity = seed % 2 == 0;
        let oracle = move |s: &str| if parity { dyck_even(s) } else { dyck(s) };
        let mat = Mat::new(&oracle);

        // Alternate between a healthy pool and the crippled one that forces
        // the refinement loop to do real work (the core crate's regression
        // setup), so both code paths feed the analyzer.
        let test_pool = if seed % 3 == 0 {
            TestPoolConfig { max_test_strings: 1, max_length: Some(2), rng_seed: seed }
        } else {
            TestPoolConfig { rng_seed: seed, ..TestPoolConfig::default() }
        };
        let config = VStarConfig { test_pool, ..VStarConfig::default() };
        let seeds = vec!["(xx)".to_string(), "()".to_string(), "(())xx".to_string()];
        let corpus = vstar_vpl::words::all_strings(&['(', ')', 'x'], 5);
        let mut source = CorpusEvidence::new(corpus);

        let (result, _log) = VStar::new(config)
            .learn_refined(&mat, &['(', ')', 'x'], &seeds, &mut source, RefineConfig::default())
            .expect("refined learning succeeds");

        let learned = result.as_learned_language();
        let report = learned.analyze();
        prop_assert!(
            report.is_clean(Severity::Error),
            "learned-language errors: {:?}",
            report.at_least(Severity::Error)
        );

        let compiled = result.compile().expect("pipeline output compiles");
        let report = compiled.analyze();
        prop_assert!(
            report.is_clean(Severity::Error),
            "compiled-artifact errors: {:?}",
            report.at_least(Severity::Error)
        );
    }
}
