//! Negative-path acceptance tests: every fault `vstar_fuzz::surgery` can
//! inject must light up the matching diagnostic code. Without these, a
//! lint-clean report is indistinguishable from a lint that looks at nothing —
//! the same blindness argument the differential fuzzer's self-check makes.

use vstar::{Mat, VStar, VStarConfig};
use vstar_analyze::{Analyze, Severity};
use vstar_fuzz::surgery::{with_crossed_returns, with_extra_rule, without_rule};
use vstar_parser::CompileLearned;
use vstar_vpl::grammar::figure1_grammar;
use vstar_vpl::{NonterminalId, RuleRhs};

#[test]
fn crossed_returns_trigger_the_discipline_lint() {
    let g = figure1_grammar();
    assert!(g.analyze().is_clean(Severity::Warn));
    let crossed = with_crossed_returns(&g).expect("figure 1 has two pairs");
    let report = crossed.analyze();
    assert!(report.has("VPG003"), "{:?}", report.diagnostics);
    assert!(!report.is_clean(Severity::Info));
}

#[test]
fn removed_rules_trigger_reachability_and_emptiness_lints() {
    let g = figure1_grammar();
    // Removing `B → d L` strands nonterminal B unproductive and takes every
    // derivation through `L → c B` with it.
    let (l, b_nt) = (NonterminalId(0), NonterminalId(2));
    let strict = without_rule(&g, b_nt, &RuleRhs::Linear { plain: 'd', next: l }).unwrap();
    let report = strict.analyze();
    assert!(report.has("VPG002"), "{:?}", report.diagnostics);

    // Removing every terminating alternative of the start symbol empties the
    // language: the error-severity lint.
    let no_empty = without_rule(&g, l, &RuleRhs::Empty).unwrap();
    let no_c = without_rule(&no_empty, l, &RuleRhs::Linear { plain: 'c', next: b_nt }).unwrap();
    let report = no_c.analyze();
    assert!(report.has("VPG004"), "{:?}", report.diagnostics);
    assert_eq!(report.max_severity(), Some(Severity::Error));
}

#[test]
fn extra_rules_leave_orphans_behind() {
    let g = figure1_grammar();
    // Surgery keeps the nonterminal set fixed, so orphan a real one: give E a
    // self-loop, then strip the only rule that reaches it.
    let orphaned = with_extra_rule(
        &g,
        NonterminalId(3),
        RuleRhs::Linear { plain: 'c', next: NonterminalId(3) },
    )
    .unwrap();
    let without_e = without_rule(
        &orphaned,
        NonterminalId(1),
        &RuleRhs::Match { call: 'g', inner: NonterminalId(0), ret: 'h', next: NonterminalId(3) },
    )
    .unwrap();
    let report = without_e.analyze();
    assert!(report.has("VPG001"), "{:?}", report.diagnostics);
    assert!(report.has("VPG002"), "{:?}", report.diagnostics);
}

#[test]
fn surgered_learned_language_fails_the_extraction_equality_lint() {
    let dyck = |s: &str| {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => depth -= 1,
                'x' => {}
                _ => return false,
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0
    };
    let oracle = |s: &str| dyck(s);
    let mat = Mat::new(&oracle);
    let seeds = vec!["(x)".to_string(), "()".to_string(), "(())x".to_string()];
    let result = VStar::new(VStarConfig::default())
        .learn(&mat, &['(', ')', 'x'], &seeds)
        .expect("dyck learns");
    let learned = result.as_learned_language();

    // The genuine pipeline output carries no errors...
    let clean = learned.analyze();
    assert!(clean.is_clean(Severity::Error), "{:?}", clean.at_least(Severity::Error));
    assert!(!clean.has("LRN001"));

    // ...but any grammar surgery breaks grammar/automaton extraction
    // equality, and the combined lint pins it as an error.
    let weak_vpg = with_extra_rule(
        learned.vpg(),
        learned.vpg().start(),
        RuleRhs::Linear { plain: 'x', next: learned.vpg().start() },
    )
    .unwrap();
    let report = learned.clone().with_vpg(weak_vpg).analyze();
    assert!(report.has("LRN001"), "{:?}", report.codes());
    assert_eq!(report.max_severity(), Some(Severity::Error));
}

#[test]
fn compiled_artifact_of_a_surgered_grammar_inherits_grammar_findings() {
    let g = figure1_grammar();
    let crossed = with_crossed_returns(&g).expect("two pairs");
    let compiled = vstar_parser::CompiledGrammar::from_vpg(&crossed).unwrap();
    let report = compiled.analyze();
    assert!(report.has("VPG003"), "{:?}", report.codes());
    assert!(report.diagnostics.iter().any(|d| d.location.starts_with("grammar/")));
}

#[test]
fn genuine_compiled_artifact_is_gate_clean() {
    let dyck = |s: &str| {
        let mut depth = 0i64;
        for c in s.chars() {
            match c {
                '(' => depth += 1,
                ')' => depth -= 1,
                _ => return false,
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0
    };
    let oracle = |s: &str| dyck(s);
    let mat = Mat::new(&oracle);
    let seeds = vec!["()".to_string(), "(())".to_string(), "()()".to_string()];
    let result =
        VStar::new(VStarConfig::default()).learn(&mat, &['(', ')'], &seeds).expect("dyck learns");
    let compiled = result.compile().expect("compiles");
    let report = compiled.analyze();
    assert!(report.is_clean(Severity::Warn), "{:?}", report.at_least(Severity::Warn));
}
