//! Workspace-level integration tests: exercise the public APIs of all crates
//! together, end to end, the way the examples and the bench harness do.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vstar::{Mat, TokenDiscovery, VStar, VStarConfig};
use vstar_baselines::{Glade, GladeConfig, LearnedGrammar};
use vstar_eval::{evaluate_glade, evaluate_vstar, EvalConfig, Table1Report};
use vstar_oracles::{Fig1, Language, Lisp, ToyXml};
use vstar_vpl::vpa_to_vpg;

#[test]
fn fig1_character_mode_end_to_end() {
    let lang = Fig1::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let config =
        VStarConfig { token_discovery: TokenDiscovery::Characters, ..VStarConfig::default() };
    let result = VStar::new(config).learn(&mat, &lang.alphabet(), &lang.seeds()).unwrap();

    // Exact agreement on everything the reference grammar enumerates up to length 8
    // and on every string over the alphabet up to length 5.
    for w in lang.grammar().enumerate(8) {
        assert!(result.accepts(&mat, &w), "reference word {w:?} rejected");
    }
    for w in vstar_vpl::words::all_strings(&lang.alphabet(), 5) {
        assert_eq!(lang.accepts(&w), result.accepts(&mat, &w), "mismatch on {w:?}");
    }
    // The extracted grammar and the learned automaton agree.
    for w in vstar_vpl::words::all_strings(&lang.alphabet(), 4) {
        assert_eq!(result.vpa.accepts(&w), result.vpg.accepts(&w));
    }
    // Re-converting the learned VPA through the public conversion is stable.
    let again = vpa_to_vpg(&result.vpa);
    for w in vstar_vpl::words::all_strings(&lang.alphabet(), 4) {
        assert_eq!(again.accepts(&w), result.vpg.accepts(&w));
    }
}

#[test]
fn toy_xml_token_mode_end_to_end() {
    let lang = ToyXml::new();
    let oracle = |s: &str| lang.accepts(s);
    let mat = Mat::new(&oracle);
    let result =
        VStar::new(VStarConfig::default()).learn(&mat, &lang.alphabet(), &lang.seeds()).unwrap();
    assert_eq!(result.stats.token_pairs, 1);
    let mut rng = StdRng::seed_from_u64(3);
    for s in lang.generate_corpus(&mut rng, 25, 60) {
        assert!(result.accepts(&mat, &s), "member {s:?} rejected");
    }
    for bad in ["<p>", "</p>", "<p>x</p", "<p><p>x</p>", ""] {
        assert!(!result.accepts(&mat, bad), "non-member {bad:?} accepted");
    }
}

#[test]
fn vstar_outperforms_glade_on_recursive_language() {
    let lang = Lisp::new();
    let config = EvalConfig {
        recall_samples: 60,
        precision_samples: 60,
        generation_budget: 16,
        ..EvalConfig::default()
    };
    let vstar_row = evaluate_vstar(&lang, &config);
    let glade_row = evaluate_glade(&lang, &config);

    // The Table-1 shape: V-Star reaches (near-)exact accuracy, the regular
    // approximation of GLADE cannot, and V-Star pays for it with more queries.
    assert!(vstar_row.recall >= 0.95, "vstar recall {}", vstar_row.recall);
    assert!(vstar_row.precision >= 0.95, "vstar precision {}", vstar_row.precision);
    assert!(vstar_row.f1 > glade_row.f1, "vstar {} vs glade {}", vstar_row.f1, glade_row.f1);
    assert!(vstar_row.queries > glade_row.queries);

    let mut report = Table1Report::new();
    report.push(glade_row);
    report.push(vstar_row);
    let rendered = report.to_string();
    assert!(rendered.contains("== vstar =="));
    assert!(rendered.contains("lisp"));
}

#[test]
fn baseline_trait_object_usage() {
    let lang = Lisp::new();
    let oracle = |s: &str| lang.accepts(s);
    let glade = Glade::learn(&oracle, &lang.seeds(), &GladeConfig::default());
    let learned: &dyn LearnedGrammar = &glade;
    for s in lang.seeds() {
        assert!(learned.accepts(&s));
    }
    let mut rng = StdRng::seed_from_u64(1);
    assert!(learned.sample(&mut rng, 16).is_some());
}
