//! Smoke test for the workspace surface: every example under `examples/` must
//! build and run to completion, so drift between the examples and the library
//! APIs fails `cargo test` loudly instead of rotting silently.
//!
//! Each example is executed through `cargo run --example` using the same cargo
//! binary that is running this test; examples are already compiled as part of
//! `cargo test`, so each invocation only pays process startup plus the
//! example's own runtime.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "example `{name}` exited with {status:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        status = output.status.code(),
    );
    assert!(!stdout.trim().is_empty(), "example `{name}` printed nothing to stdout");
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn fig1_running_example_runs() {
    run_example("fig1_running_example");
}

#[test]
fn fig2_toy_xml_runs() {
    run_example("fig2_toy_xml");
}

#[test]
fn json_inference_runs() {
    run_example("json_inference");
}

#[test]
fn custom_oracle_runs() {
    run_example("custom_oracle");
}

#[test]
fn compare_baselines_runs() {
    run_example("compare_baselines");
}

#[test]
fn parse_with_learned_grammar_runs() {
    run_example("parse_with_learned_grammar");
}

#[test]
fn fuzz_learned_grammar_runs() {
    run_example("fuzz_learned_grammar");
}

#[test]
fn serve_compiled_grammar_runs() {
    run_example("serve_compiled_grammar");
}
